"""Fig 11: within-user variability of job characteristics."""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import ecdf
from repro.analysis.users import user_table
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def _cov_ecdf(users, column):
    values = np.asarray(users[column], dtype=float)
    values = values[np.isfinite(values)]
    return ecdf(values) if values.size else None


def run(dataset: SupercloudDataset) -> FigureResult:
    """CDFs across users of the CoV of runtime/SM/memory/size."""
    # Users with a single job have zero variance by construction; the
    # paper's CoV analysis implicitly covers users with several jobs.
    users = user_table(dataset.gpu_jobs).filter(
        lambda t: np.asarray(t["num_jobs"], dtype=float) >= 3
    )
    runtime = _cov_ecdf(users, "cov_runtime")
    sm = _cov_ecdf(users, "cov_sm")
    mem = _cov_ecdf(users, "cov_mem_bw")
    size = _cov_ecdf(users, "cov_mem_size")

    comparisons = [
        Comparison("user runtime CoV p25", 0.86, runtime.quantile(0.25)),
        Comparison("user runtime CoV median", 1.55, runtime.median()),
        Comparison("user runtime CoV p75", 2.27, runtime.quantile(0.75)),
    ]
    if sm is not None:
        comparisons.append(Comparison("user SM CoV median", 1.21, sm.median()))
    if mem is not None:
        comparisons.append(Comparison("user memory CoV median", 1.82, mem.median()))
    if size is not None:
        comparisons.append(Comparison("user memory-size CoV median", 0.99, size.median()))
    return FigureResult(
        figure_id="fig11",
        title="Within-user variability of job characteristics",
        series={"runtime": runtime, "sm": sm, "mem_bw": mem, "mem_size": size},
        comparisons=comparisons,
        notes="users with fewer than 3 jobs excluded (CoV undefined/degenerate)",
    )
