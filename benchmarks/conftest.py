"""Shared benchmark fixtures.

The dataset is generated once per session.  ``REPRO_BENCH_SCALE``
selects the dataset size (default 0.05 keeps the whole suite under a
minute; 1.0 reproduces the paper-sized dataset, ~4 minutes of
generation).
"""

from __future__ import annotations

import os

import pytest

from repro.dataset import generate_dataset
from repro.workload.generator import WorkloadConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20220214"))


@pytest.fixture(scope="session")
def dataset():
    return generate_dataset(WorkloadConfig(scale=BENCH_SCALE, seed=BENCH_SEED))
