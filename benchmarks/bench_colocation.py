"""Opportunity study: GPU co-location (Sec. III takeaway)."""

from repro.opportunities.colocation import colocation_study


def test_colocation_packing(benchmark, dataset):
    report = benchmark(colocation_study, dataset, 200)
    assert report.gpu_savings_fraction > 0.1
    assert report.mean_slowdown < 1.25


def test_colocation_headroom_ablation(dataset, benchmark):
    """Ablation: tighter headroom saves fewer GPUs but slows jobs less."""

    def sweep():
        return [
            colocation_study(dataset, max_jobs=150, headroom=h) for h in (30.0, 60.0, 90.0)
        ]

    conservative, moderate, aggressive = benchmark(sweep)
    assert conservative.gpus_after >= moderate.gpus_after >= aggressive.gpus_after
    assert conservative.mean_slowdown <= aggressive.mean_slowdown + 0.1
