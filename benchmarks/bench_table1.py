"""Table I: system specification reproduction."""

from repro.figures.registry import run_figure


def test_table1(benchmark, dataset):
    result = benchmark(run_figure, "table1", dataset)
    assert result.get("GPUs per node").measured == 2
    assert result.get("GPU RAM").measured == 32.0
