"""Sec. V: median queue wait by job GPU count."""

from repro.figures.registry import run_figure


def test_queue_waits_by_size(benchmark, dataset):
    result = benchmark(run_figure, "queue_waits", dataset)
    # shape: multi-GPU jobs are not penalised with longer waits
    single = result.get("median wait, 1 GPU(s)").measured
    multi = result.get("median wait, 2 GPU(s)").measured
    assert multi <= single
