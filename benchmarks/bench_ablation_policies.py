"""Ablation: queue-priority policies vs the paper's FCFS baseline."""

import numpy as np

from repro.cluster.spec import supercloud_spec
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def test_policy_ablation(benchmark):
    config = WorkloadConfig(scale=0.02, seed=8)
    requests = WorkloadGenerator(config).generate()
    nodes = config.scaled_nodes

    def run_all():
        waits = {}
        for policy in ("fcfs", "smallest_first", "shortest_limit", "fair_share"):
            result = SlurmSimulator(
                supercloud_spec(nodes), SchedulerConfig(policy=policy)
            ).run(list(requests))
            waits[policy] = float(
                np.mean([r.wait_time_s for r in result.records])
            )
        return waits

    waits = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # CPU campaign bursts dominate the mean wait (~15 min); the point
    # of the ablation is that no policy collapses, and fair-share does
    # not hurt the average
    assert all(w < 3600.0 for w in waits.values()), waits
    assert waits["fair_share"] <= waits["fcfs"] * 1.2
