"""Tests for the figure-to-SVG chart mapping."""

import pytest

from repro.errors import AnalysisError
from repro.figures.plots import figure_charts, plottable_figures, save_figure_plots
from repro.figures.registry import all_figures, run_figure


@pytest.fixture(scope="module")
def results(medium_dataset):
    return {fid: run_figure(fid, medium_dataset) for fid in plottable_figures()}


class TestCoverage:
    def test_every_plottable_figure_in_registry(self):
        assert set(plottable_figures()) <= set(all_figures())

    def test_every_paper_figure_plottable(self):
        plottable = set(plottable_figures())
        for n in range(3, 18):
            assert f"fig{n:02d}" in plottable

    def test_all_charts_render(self, results):
        for fid, result in results.items():
            charts = figure_charts(result)
            assert charts, fid
            for name, chart in charts.items():
                svg = chart.render()
                assert svg.startswith("<svg"), (fid, name)

    def test_unknown_figure_rejected(self, results):
        result = results["fig03"]
        result_copy = type(result)(figure_id="nope", title="", series=result.series)
        with pytest.raises(AnalysisError):
            figure_charts(result_copy)


class TestSaving:
    def test_save_writes_svg_files(self, results, tmp_path):
        paths = save_figure_plots(results["fig04"], tmp_path)
        assert len(paths) == 2
        for path in paths:
            assert path.suffix == ".svg"
            assert path.read_text().startswith("<svg")

    def test_filenames_prefixed_with_figure_id(self, results, tmp_path):
        paths = save_figure_plots(results["fig15"], tmp_path)
        assert all(p.name.startswith("fig15_") for p in paths)


class TestExtensionCharts:
    def test_ext_timeline_charts(self, results):
        charts = figure_charts(results["ext_timeline"])
        assert set(charts) == {"occupancy", "daily"}
        svg = charts["occupancy"].render()
        assert "capacity" in svg

    def test_ext_prediction_chart(self, results):
        charts = figure_charts(results["ext_prediction"])
        svg = charts["strategies"].render()
        assert "user_mean" in svg and "global_median" in svg

    def test_ext_queueing_chart(self, results):
        charts = figure_charts(results["ext_queueing"])
        assert "parameters" in charts
        assert charts["parameters"].render().startswith("<svg")


class TestChartContent:
    def test_fig03_has_two_charts(self, results):
        charts = figure_charts(results["fig03"])
        assert set(charts) == {"runtimes", "wait_fraction"}

    def test_fig03_runtime_chart_is_log(self, results):
        charts = figure_charts(results["fig03"])
        assert charts["runtimes"].x_log

    def test_fig13_grouped_bars(self, results):
        charts = figure_charts(results["fig13"])
        svg = charts["sizes"].render()
        assert "jobs" in svg and "GPU hours" in svg

    def test_fig16_box_charts_per_metric(self, results):
        charts = figure_charts(results["fig16"])
        assert "sm_mean" in charts
