"""Fig 13: job-size mix and GPU-hour footprint of multi-GPU jobs.

Streams: the size-mix fractions go through
:func:`~repro.analysis.stats.column_fraction` (exact integer counts,
bit-identical on a chunk stream), the breakdown and breadth kernels
carry their own streaming folds, and the multi-GPU hour share streams
as one sum fold, so this producer accepts a materialized dataset or
``dataset.streaming_view()`` unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.multigpu import gpu_count_breakdown, user_gpu_breadth
from repro.analysis.stats import column_fraction
from repro.analysis.streaming import is_chunked
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def _multi_gpu_hour_share(gpu) -> float:
    """GPU-hour share of multi-GPU jobs, exact or one-pass folded."""
    if is_chunked(gpu):
        multi = total = 0.0
        for chunk in gpu.chunks():
            counts = np.asarray(chunk["num_gpus"], dtype=float)
            hours = np.asarray(chunk["gpu_hours"], dtype=float)
            multi += float(hours[counts > 1].sum())
            total += float(hours.sum())
        return multi / total
    counts = np.asarray(gpu["num_gpus"], dtype=float)
    hours = np.asarray(gpu["gpu_hours"], dtype=float)
    return float(hours[counts > 1].sum() / hours.sum())


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 13(a): fraction of jobs per GPU count; Fig 13(b): GPU-hour
    share; plus Sec. V per-user breadth."""
    gpu = dataset.gpu_jobs
    breakdown = gpu_count_breakdown(gpu)
    breadth = user_gpu_breadth(gpu)

    comparisons = [
        Comparison(
            "single-GPU job fraction",
            0.84,
            column_fraction(gpu, "num_gpus", lambda g: g == 1),
        ),
        Comparison(
            "jobs with >2 GPUs", 0.024, column_fraction(gpu, "num_gpus", lambda g: g > 2)
        ),
        Comparison(
            "jobs with >=9 GPUs (<1%)",
            0.01,
            column_fraction(gpu, "num_gpus", lambda g: g >= 9),
        ),
        Comparison("multi-GPU share of GPU hours", 0.50, _multi_gpu_hour_share(gpu)),
        Comparison("users with any multi-GPU job", 0.60, breadth["any_multi_gpu"]),
        Comparison("users with >=3-GPU jobs", 0.13, breadth["three_plus"]),
        Comparison("users with >=9-GPU jobs", 0.052, breadth["nine_plus"]),
    ]
    return FigureResult(
        figure_id="fig13",
        title="Multi-GPU job mix and GPU-hour footprint",
        series={"breakdown": breakdown, "breadth": breadth},
        comparisons=comparisons,
    )
