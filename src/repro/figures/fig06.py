"""Fig 6: active/idle phase structure from the time-series subset.

Streams: :func:`~repro.analysis.phases.job_phase_table` folds the
series store one series at a time (``iter_sorted`` keeps a single
spill batch resident on a sharded build), and the resulting phase
table is O(sampled jobs), so this producer accepts a materialized
dataset or ``dataset.streaming_view()`` unchanged.  Interval-CoV
samples are filtered to finite values *explicitly* — the same drop
:func:`~repro.analysis.stats.ecdf` applies internally — so the sample
counts reported by both paths agree.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.phases import job_phase_table
from repro.analysis.stats import ecdf
from repro.dataset import SupercloudDataset
from repro.errors import AnalysisError
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 6(a): active-time share CDF; Fig 6(b): interval-length CoVs."""
    if len(dataset.timeseries) == 0:
        raise AnalysisError("dataset has no time-series subset")
    phases = job_phase_table(dataset.timeseries)

    active = ecdf(phases["active_fraction"])
    # Interval CoV is defined only for jobs with >= 2 intervals of the
    # given kind; a single-interval job reports NaN.  Drop non-finite
    # values here with the same mask ecdf() applies, so the retained
    # sample set is identical however the phase table was folded.
    active_cov = np.asarray(phases["active_interval_cov"], dtype=float)
    idle_cov = np.asarray(phases["idle_interval_cov"], dtype=float)
    multi_active = active_cov[
        (np.asarray(phases["num_active_intervals"]) >= 2) & np.isfinite(active_cov)
    ]
    multi_idle = idle_cov[
        (np.asarray(phases["num_idle_intervals"]) >= 2) & np.isfinite(idle_cov)
    ]

    comparisons = [
        Comparison("active-time share p25", 0.14, active.quantile(0.25)),
        Comparison("active-time share median", 0.84, active.median()),
        Comparison("active-time share p75", 0.95, active.quantile(0.75)),
    ]
    series: dict[str, object] = {"active_fraction_cdf": active, "phase_table": phases}
    if multi_idle.size:
        idle_ecdf = ecdf(multi_idle)
        series["idle_cov_cdf"] = idle_ecdf
        comparisons.append(Comparison("idle interval CoV median", 1.26, idle_ecdf.median()))
    if multi_active.size:
        active_ecdf = ecdf(multi_active)
        series["active_cov_cdf"] = active_ecdf
        comparisons.append(
            Comparison("active interval CoV median", 1.69, active_ecdf.median())
        )
    return FigureResult(
        figure_id="fig06",
        title="Active/idle phases of GPU jobs",
        series=series,
        comparisons=comparisons,
        notes=f"computed over {phases.num_rows} dense-sampled jobs",
    )
