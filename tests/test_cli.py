"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.scale == 0.1
        assert args.output == "dataset"

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig04", "--scale", "0.05"])
        assert args.figure_id == "fig04"
        assert args.scale == 0.05


class TestCommands:
    def test_generate_writes_csvs(self, tmp_path, capsys):
        rc = main(
            ["generate", "--scale", "0.01", "--seed", "5", "--output", str(tmp_path)]
        )
        assert rc == 0
        assert (tmp_path / "jobs.csv").exists()
        assert (tmp_path / "gpu_jobs.csv").exists()
        assert (tmp_path / "per_gpu.csv").exists()
        assert "GPU jobs" in capsys.readouterr().out

    def test_figure_prints_comparisons(self, capsys):
        rc = main(["figure", "fig15", "--scale", "0.01", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mature job share" in out

    def test_report_writes_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "EXP.md"
        rc = main(
            ["report", "--scale", "0.01", "--seed", "5", "--output", str(out_file)]
        )
        assert rc == 0
        assert out_file.exists()

    def test_opportunities_prints_studies(self, capsys):
        rc = main(["opportunities", "--scale", "0.01", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "co-location" in out
        assert "power capping" in out
        assert "checkpointing" in out

    def test_unknown_figure_raises(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            main(["figure", "fig99", "--scale", "0.01"])

    def test_plot_writes_svgs(self, tmp_path, capsys):
        rc = main(
            ["plot", "fig04", "--scale", "0.01", "--seed", "5", "--output", str(tmp_path)]
        )
        assert rc == 0
        written = list(tmp_path.glob("fig04_*.svg"))
        assert len(written) == 2

    def test_summary_prints_sections(self, capsys):
        rc = main(["summary", "--scale", "0.01", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "queue health" in out
        assert "GPU utilization" in out

    def test_validate_reports_fraction(self, capsys):
        rc = main(["validate", "--scale", "0.01", "--seed", "5", "--min-pass", "0.0"])
        assert rc == 0
        assert "checks passed" in capsys.readouterr().out

    def test_validate_threshold_gate(self, capsys):
        rc = main(["validate", "--scale", "0.01", "--seed", "5", "--min-pass", "1.01"])
        assert rc == 1

    def test_scenario_flag(self, capsys):
        rc = main(
            ["figure", "fig15", "--scale", "0.01", "--seed", "5",
             "--scenario", "exploration_surge"]
        )
        assert rc == 0
        assert "exploratory job share" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["figure", "fig15", "--scale", "0.01", "--scenario", "moonbase"])
