"""Machine-readable results for the performance-smoke suite.

``python -m repro bench`` has always printed a human pass/fail table;
this module adds the durable artifact: every run also writes a
``BENCH_<n>.json`` at the repo root recording, per benchmark suite,
the wall time, pass/fail, and whatever throughput/memory statistics
the suite chose to report.  The JSON is append-only history — each run
picks the next free ``<n>`` — so regressions can be diffed across
commits without re-running old code.

Suites report statistics through :func:`record_bench_stat`: while a
suite runs, the runner exports ``REPRO_BENCH_STATS_DIR`` and each call
drops a small JSON sidecar there (one file per stat name, last write
wins); the runner sweeps the directory afterwards and merges the
sidecars into that suite's entry.  Outside the runner the helper is a
no-op, so benchmark files behave identically under plain pytest.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable the runner sets while a suite's subprocess runs.
STATS_DIR_ENV = "REPRO_BENCH_STATS_DIR"

#: Written BENCH files match this (``BENCH_6.json``, ``BENCH_12.json``, …).
_BENCH_FILE_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: The first id ever used, so history starts where the repo's numbered
#: growth issues left off.
FIRST_BENCH_ID = 6


def record_bench_stat(name: str, **stats) -> None:
    """Report a named statistic block from inside a benchmark suite.

    ``stats`` values must be JSON-serializable (numbers, strings,
    flat dicts).  Typical use from a benchmark body::

        record_bench_stat("stream_sketch", rows_per_s=2.1e7,
                          peak_tracemalloc_bytes=3_400_000)

    No-op unless ``REPRO_BENCH_STATS_DIR`` is set (i.e. unless running
    under ``python -m repro bench``), so suites stay plain pytest
    files.
    """
    stats_dir = os.environ.get(STATS_DIR_ENV)
    if not stats_dir:
        return
    path = Path(stats_dir) / f"{name}.json"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(stats, sort_keys=True))
    except OSError:
        # A broken stats dir must never fail the benchmark itself.
        return


@dataclass
class SuiteResult:
    """Outcome of one benchmark file run in its own pytest subprocess."""

    name: str
    path: str
    passed: bool
    seconds: float
    stats: dict = field(default_factory=dict)
    stdout_tail: str = ""
    stderr_tail: str = ""

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "passed": self.passed,
            "seconds": round(self.seconds, 3),
            "stats": self.stats,
        }


def run_suite(name: str, rel_path: str, root: Path, env: dict) -> SuiteResult:
    """Run one benchmark file in a pytest subprocess, collecting stats.

    The subprocess gets a fresh ``REPRO_BENCH_STATS_DIR``; sidecar JSON
    files written there by :func:`record_bench_stat` are merged into
    the result keyed by stat name.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-stats-") as stats_dir:
        sub_env = dict(env)
        sub_env[STATS_DIR_ENV] = stats_dir
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", rel_path],
            cwd=root,
            env=sub_env,
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        stats = _sweep_stats(Path(stats_dir))
    return SuiteResult(
        name=name,
        path=rel_path,
        passed=proc.returncode == 0,
        seconds=elapsed,
        stats=stats,
        stdout_tail=proc.stdout[-4000:],
        stderr_tail=proc.stderr[-2000:],
    )


def _sweep_stats(stats_dir: Path) -> dict:
    stats: dict = {}
    try:
        sidecars = sorted(stats_dir.glob("*.json"))
    except OSError:
        return stats
    for sidecar in sidecars:
        try:
            stats[sidecar.stem] = json.loads(sidecar.read_text())
        except (OSError, ValueError):
            stats[sidecar.stem] = {"error": "unreadable stats sidecar"}
    return stats


def next_bench_path(root: Path) -> Path:
    """The next free ``BENCH_<n>.json`` at the repo root.

    Existing history is never overwritten: the id is one past the
    largest already present (starting at :data:`FIRST_BENCH_ID`).
    """
    highest = FIRST_BENCH_ID - 1
    try:
        entries = list(root.iterdir())
    except OSError:
        entries = []
    for entry in entries:
        match = _BENCH_FILE_RE.match(entry.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return root / f"BENCH_{highest + 1}.json"


def load_bench_history(root: Path) -> list[tuple[int, dict]]:
    """All readable ``BENCH_<n>.json`` payloads at ``root``, id-sorted.

    Unreadable or malformed files are skipped — history may span many
    tool versions and a corrupt old entry must not break checking.
    """
    entries: list[tuple[int, dict]] = []
    try:
        candidates = list(root.iterdir())
    except OSError:
        return entries
    for entry in candidates:
        match = _BENCH_FILE_RE.match(entry.name)
        if not match:
            continue
        try:
            payload = json.loads(entry.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict) and isinstance(payload.get("suites"), list):
            entries.append((int(match.group(1)), payload))
    entries.sort(key=lambda pair: pair[0])
    return entries


@dataclass
class BenchCheck:
    """Outcome of comparing the latest bench run against history."""

    latest_id: int | None
    baseline_runs: int
    threshold: float
    min_seconds: float
    checked: list[dict] = field(default_factory=list)
    regressions: list[dict] = field(default_factory=list)
    #: Stat-level comparisons (throughput / peak memory), same
    #: ratio+absolute double gate as wall time.
    stat_checked: list[dict] = field(default_factory=list)
    stat_regressions: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.stat_regressions

    def to_text(self) -> str:
        if self.latest_id is None:
            return "bench check: no BENCH_<n>.json history to compare"
        if self.baseline_runs == 0:
            return (
                f"bench check: BENCH_{self.latest_id} has no comparable "
                "baseline runs (first run at this bench scale?)"
            )
        lines = [
            f"bench check: BENCH_{self.latest_id} vs median of "
            f"{self.baseline_runs} prior run(s) "
            f"(flag > {1 + self.threshold:.2f}x and > +{self.min_seconds:g}s)"
        ]
        for row in self.checked:
            flagged = "REGRESSION" if row in self.regressions else "ok"
            lines.append(
                f"  {row['suite']:<12} {row['latest_s']:8.2f}s "
                f"baseline {row['baseline_s']:8.2f}s "
                f"({row['ratio']:.2f}x)  {flagged}"
            )
        for row in self.stat_checked:
            flagged = "REGRESSION" if row in self.stat_regressions else "ok"
            lines.append(
                f"  {row['suite']:<12} {row['metric']}: "
                f"{row['latest']:.3g} baseline {row['baseline']:.3g} "
                f"({row['ratio']:.2f}x)  {flagged}"
            )
        return "\n".join(lines)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


#: Absolute floors for the stat-level double gates (mirrors
#: ``min_seconds`` for wall time): a throughput drop must lose at
#: least this many rows/s, a peak-memory growth must add at least
#: this many bytes, a spill-volume growth must add at least this many
#: encoded bytes, and a compression ratio must lose at least this much
#: before the ratio gate can flag it.
MIN_ROWS_PER_S_DROP = 10_000.0
MIN_PEAK_BYTES_GROWTH = 16 * 1024 * 1024
MIN_SPILL_BYTES_GROWTH = 4 * 1024 * 1024
MIN_COMPRESSION_RATIO_DROP = 0.25

#: Whether a higher value of a stat kind is a regression.  Wall time,
#: peak memory, and spill volume worsen upward; throughput and
#: compression ratios worsen downward.
_KIND_HIGHER_IS_WORSE = {
    "seconds": True,
    "memory": True,
    "spill": True,
    "throughput": False,
    "ratio": False,
}


def _stat_kind(key: str) -> str | None:
    """Classify a stat key for regression checking.

    ``rows_per_s``-style keys are throughput (lower is worse);
    ``*peak*bytes``-style keys are memory (higher is worse);
    ``*spill*bytes``-style keys are spill volume (higher is worse —
    the codec's job is to keep encoded bytes down); keys ending in
    ``compression_ratio`` are codec ratios (lower is worse).  Anything
    else is informational and never gated.
    """
    if key.endswith("rows_per_s"):
        return "throughput"
    if key.endswith("compression_ratio"):
        return "ratio"
    if "peak" in key and key.endswith("bytes"):
        return "memory"
    if "spill" in key and key.endswith("bytes"):
        return "spill"
    return None


def _flat_stats(suite: dict) -> dict[str, float]:
    """Gateable numeric stats of one suite entry as ``stat.key`` pairs."""
    flat: dict[str, float] = {}
    stats = suite.get("stats")
    if not isinstance(stats, dict):
        return flat
    for stat_name, block in stats.items():
        if not isinstance(block, dict):
            continue
        for key, value in block.items():
            if _stat_kind(key) and isinstance(value, (int, float)):
                flat[f"{stat_name}.{key}"] = float(value)
    return flat


def check_regressions(
    root: Path,
    *,
    threshold: float = 0.35,
    min_seconds: float = 2.0,
    window: int = 5,
) -> BenchCheck:
    """Flag per-suite wall-time and stat regressions in the trajectory.

    The newest ``BENCH_<n>.json`` is compared, suite by suite, against
    the **median** of up to ``window`` immediately preceding runs that
    used the same ``bench_scale`` (different scales are incomparable by
    construction).  A suite regresses when its latest wall time exceeds
    ``(1 + threshold) * median`` **and** the absolute slowdown exceeds
    ``min_seconds`` — the second clause keeps sub-second suites from
    tripping on scheduler noise.  Suites absent from the baseline
    (newly added benchmarks) are never flagged.

    Recorded stats get the same ratio+absolute double gate: a
    ``rows_per_s`` throughput stat regresses when it falls below
    ``median / (1 + threshold)`` and loses more than
    :data:`MIN_ROWS_PER_S_DROP`; a ``*peak*bytes`` memory stat
    regresses when it exceeds ``(1 + threshold) * median`` and grows by
    more than :data:`MIN_PEAK_BYTES_GROWTH`; a ``*spill*bytes`` volume
    stat works like memory with a :data:`MIN_SPILL_BYTES_GROWTH` floor;
    a ``*compression_ratio`` stat works like throughput with a
    :data:`MIN_COMPRESSION_RATIO_DROP` floor.  Stats absent from the
    baseline are, like new suites, never flagged.
    """
    history = load_bench_history(root)
    if not history:
        return BenchCheck(None, 0, threshold, min_seconds)
    latest_id, latest = history[-1]
    scale = latest.get("bench_scale")
    baselines = [
        payload
        for _, payload in history[:-1]
        if payload.get("bench_scale") == scale
    ][-window:]
    check = BenchCheck(latest_id, len(baselines), threshold, min_seconds)
    if not baselines:
        return check
    baseline_times: dict[str, list[float]] = {}
    baseline_stats: dict[tuple[str, str], list[float]] = {}
    for payload in baselines:
        for suite in payload["suites"]:
            name, seconds = suite.get("name"), suite.get("seconds")
            if isinstance(name, str) and isinstance(seconds, (int, float)):
                baseline_times.setdefault(name, []).append(float(seconds))
            if isinstance(name, str):
                for metric, value in _flat_stats(suite).items():
                    baseline_stats.setdefault((name, metric), []).append(value)
    for suite in latest["suites"]:
        name, seconds = suite.get("name"), suite.get("seconds")
        if not isinstance(name, str):
            continue
        if name in baseline_times:
            baseline = _median(baseline_times[name])
            latest_s = float(seconds)
            row = {
                "suite": name,
                "latest_s": latest_s,
                "baseline_s": baseline,
                "ratio": latest_s / baseline if baseline > 0 else float("inf"),
            }
            check.checked.append(row)
            if (
                latest_s > (1.0 + threshold) * baseline
                and latest_s - baseline > min_seconds
            ):
                check.regressions.append(row)
        for metric, value in _flat_stats(suite).items():
            if (name, metric) not in baseline_stats:
                continue
            baseline = _median(baseline_stats[(name, metric)])
            kind = _stat_kind(metric.rsplit(".", 1)[-1])
            row = {
                "suite": name,
                "metric": metric,
                "kind": kind,
                "latest": value,
                "baseline": baseline,
                "ratio": value / baseline if baseline > 0 else float("inf"),
            }
            check.stat_checked.append(row)
            if kind == "throughput":
                regressed = (
                    value < baseline / (1.0 + threshold)
                    and baseline - value > MIN_ROWS_PER_S_DROP
                )
            elif kind == "ratio":
                regressed = (
                    value < baseline / (1.0 + threshold)
                    and baseline - value > MIN_COMPRESSION_RATIO_DROP
                )
            elif kind == "spill":
                regressed = (
                    value > (1.0 + threshold) * baseline
                    and value - baseline > MIN_SPILL_BYTES_GROWTH
                )
            else:
                regressed = (
                    value > (1.0 + threshold) * baseline
                    and value - baseline > MIN_PEAK_BYTES_GROWTH
                )
            if regressed:
                check.stat_regressions.append(row)
    return check


# ----------------------------------------------------------------------
# Trend reporting (`repro bench --report`)
# ----------------------------------------------------------------------

#: Eight-level bars for terminal sparklines, lowest to highest.
_SPARK_BARS = "▁▂▃▄▅▆▇█"

#: A least-squares slope steeper than this fraction of the series mean,
#: per run, in the *worsening* direction, earns a DRIFT flag.
TREND_DRIFT_THRESHOLD = 0.05


def _sparkline(values: list[float | None]) -> str:
    """Min-max scaled unicode sparkline; ``None`` gaps render as ``·``."""
    present = [v for v in values if v is not None]
    if not present:
        return "·" * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append("·")
        elif span <= 0:
            chars.append(_SPARK_BARS[0])
        else:
            index = int((value - lo) / span * (len(_SPARK_BARS) - 1))
            chars.append(_SPARK_BARS[index])
    return "".join(chars)


def _least_squares_slope(values: list[float]) -> float:
    """Slope of the best-fit line over run index (value units per run)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    numerator = sum(
        (x - mean_x) * (y - mean_y) for x, y in enumerate(values)
    )
    denominator = sum((x - mean_x) ** 2 for x in range(n))
    return numerator / denominator if denominator else 0.0


def bench_trend(root: Path, *, window: int = 20) -> dict:
    """Structured per-suite/per-stat trends over the stored trajectory.

    Uses up to ``window`` most recent runs at the latest run's
    ``bench_scale`` (other scales are incomparable, same rule as
    :func:`check_regressions`).  Returns::

        {"scale": ..., "run_ids": [...], "shas": [...],
         "skipped_runs": N, "series": [
            {"suite": ..., "metric": "wall_s" | "<stat>.<key>",
             "kind": "seconds" | "throughput" | "memory"
                     | "spill" | "ratio",
             "values": [... or None per run],
             "first": ..., "last": ..., "slope": ...,
             "drift": ..., "worsening": bool}]}

    ``slope`` is the least-squares fit in value units per run;
    ``drift`` normalizes it by the series mean (fraction per run);
    ``worsening`` is True when the drift exceeds
    :data:`TREND_DRIFT_THRESHOLD` in the bad direction (wall time,
    peak memory, or spill bytes rising; throughput or compression
    ratio falling).
    """
    history = load_bench_history(root)
    if not history:
        return {
            "scale": None,
            "run_ids": [],
            "shas": [],
            "skipped_runs": 0,
            "series": [],
        }
    scale = history[-1][1].get("bench_scale")
    same_scale = [
        (bench_id, payload)
        for bench_id, payload in history
        if payload.get("bench_scale") == scale
    ][-window:]
    run_ids = [bench_id for bench_id, _ in same_scale]
    shas = [
        (payload.get("git_sha") or "")[:7] or None
        for _, payload in same_scale
    ]
    columns: dict[tuple[str, str, str], dict[int, float]] = {}
    for position, (_, payload) in enumerate(same_scale):
        for suite in payload["suites"]:
            name, seconds = suite.get("name"), suite.get("seconds")
            if not isinstance(name, str):
                continue
            if isinstance(seconds, (int, float)):
                columns.setdefault((name, "wall_s", "seconds"), {})[
                    position
                ] = float(seconds)
            for metric, value in _flat_stats(suite).items():
                kind = _stat_kind(metric.rsplit(".", 1)[-1]) or "seconds"
                columns.setdefault((name, metric, kind), {})[position] = value
    series = []
    for (suite, metric, kind), points in sorted(columns.items()):
        values: list[float | None] = [
            points.get(position) for position in range(len(same_scale))
        ]
        present = [v for v in values if v is not None]
        slope = _least_squares_slope(present)
        mean = sum(present) / len(present) if present else 0.0
        drift = slope / mean if mean else 0.0
        worsening = (
            drift > TREND_DRIFT_THRESHOLD
            if _KIND_HIGHER_IS_WORSE.get(kind, True)
            else drift < -TREND_DRIFT_THRESHOLD
        ) and len(present) >= 2
        series.append(
            {
                "suite": suite,
                "metric": metric,
                "kind": kind,
                "values": values,
                "first": present[0] if present else None,
                "last": present[-1] if present else None,
                "slope": slope,
                "drift": drift,
                "worsening": worsening,
            }
        )
    return {
        "scale": scale,
        "run_ids": run_ids,
        "shas": shas,
        "skipped_runs": len(history) - len(same_scale),
        "series": series,
    }


def _fmt_trend_value(value: float | None, kind: str) -> str:
    if value is None:
        return "-"
    if kind == "seconds":
        return f"{value:.2f}s"
    if kind in ("memory", "spill"):
        return f"{value / (1024 * 1024):.0f}MiB"
    if kind == "ratio":
        return f"{value:.2f}x"
    return f"{value:,.0f}/s"


def trend_report(root: Path, *, markdown: bool = False, window: int = 20) -> str:
    """Render the stored ``BENCH_<n>.json`` trajectory as a trend table.

    One row per suite wall time and per recorded throughput,
    peak-memory, spill-bytes, or compression-ratio stat: first and
    latest value, least-squares slope per run, a
    sparkline over the run window, and a DRIFT flag when the fit worsens
    faster than :data:`TREND_DRIFT_THRESHOLD` per run.  ``markdown=True``
    emits a GitHub-flavored table for CI artifacts.
    """
    trend = bench_trend(root, window=window)
    if not trend["run_ids"]:
        return "bench report: no BENCH_<n>.json history at " + str(root)
    run_ids = trend["run_ids"]
    sha_span = ""
    shas = [sha for sha in trend["shas"] if sha]
    if shas:
        sha_span = f", {shas[0]}..{shas[-1]}" if len(shas) > 1 else f", {shas[0]}"
    header = (
        f"bench report: {len(run_ids)} run(s) at scale {trend['scale']} "
        f"(BENCH_{run_ids[0]}..BENCH_{run_ids[-1]}{sha_span})"
    )
    if trend["skipped_runs"]:
        header += f"; {trend['skipped_runs']} run(s) at other scales skipped"
    flagged = [row for row in trend["series"] if row["worsening"]]
    if markdown:
        lines = [
            header,
            "",
            "| suite | metric | first | last | slope/run | trend | flag |",
            "| --- | --- | ---: | ---: | ---: | --- | --- |",
        ]
        for row in trend["series"]:
            lines.append(
                "| {suite} | {metric} | {first} | {last} | {drift:+.1%} "
                "| `{spark}` | {flag} |".format(
                    suite=row["suite"],
                    metric=row["metric"],
                    first=_fmt_trend_value(row["first"], row["kind"]),
                    last=_fmt_trend_value(row["last"], row["kind"]),
                    drift=row["drift"],
                    spark=_sparkline(row["values"]),
                    flag="DRIFT" if row["worsening"] else "",
                )
            )
        return "\n".join(lines)
    lines = [
        header,
        f"  {'suite':<14} {'metric':<36} {'first':>12} {'last':>12} "
        f"{'slope/run':>10}  trend",
    ]
    for row in trend["series"]:
        flag = "  DRIFT" if row["worsening"] else ""
        lines.append(
            f"  {row['suite']:<14} {row['metric']:<36} "
            f"{_fmt_trend_value(row['first'], row['kind']):>12} "
            f"{_fmt_trend_value(row['last'], row['kind']):>12} "
            f"{row['drift']:>+9.1%}  {_sparkline(row['values'])}{flag}"
        )
    if flagged:
        lines.append(
            f"  {len(flagged)} series drifting worse than "
            f"{TREND_DRIFT_THRESHOLD:.0%}/run — investigate before merging"
        )
        spilling = [
            row for row in flagged if row["kind"] in ("spill", "ratio")
        ]
        if spilling:
            worst = ", ".join(
                f"{row['suite']}:{row['metric']}" for row in spilling
            )
            lines.append(
                f"  spill-path drift ({worst}): encoded spill bytes are "
                "growing or the codec ratio is shrinking — check recent "
                "schema/codec changes before merging"
            )
    return "\n".join(lines)


def _git_sha(root: Path) -> str | None:
    """The checked-out commit, or None outside a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def write_bench_json(results: list[SuiteResult], path: Path) -> dict:
    """Serialize a bench run to ``path`` and return the payload."""
    from repro import __version__
    from repro.obs.runtime import peak_rss_bytes

    payload = {
        "schema": 1,
        "version": __version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _git_sha(path.parent),
        "python": sys.version.split()[0],
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "0.05"),
        "bench_seed": os.environ.get("REPRO_BENCH_SEED", "20220214"),
        "runner_peak_rss_bytes": peak_rss_bytes(),
        "passed": all(r.passed for r in results),
        "total_seconds": round(sum(r.seconds for r in results), 3),
        "suites": [r.to_json() for r in results],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return payload
