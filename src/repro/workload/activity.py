"""Ground-truth GPU activity models.

A job's GPU behavior is a deterministic function of time, fixed at
construction: the monitoring substrate may sample it repeatedly (dense
series + stratified summary) and always sees the same process.

Structure per job:

* a :class:`PhaseSchedule` of alternating active/idle intervals with
  lognormal lengths (high CoV — the paper's Fig 6b finding that phases
  "do not occur at a fixed periodic interval");
* per-metric active-phase levels, with smooth within-phase fluctuation
  synthesised from random sinusoids (Fig 7a CoV targets);
* short burst windows during which a metric jumps to its peak — 100 %
  for bottlenecked metrics (Fig 7b/8), ``level x peak-multiplier``
  otherwise (drives the max-power distribution of Fig 9a);
* a per-GPU scale vector: idle GPUs of multi-GPU jobs score 0 on every
  metric, active GPUs differ only by small jitter (Fig 14);
* GPU power derived from the other metrics through a linear model of
  the V100 envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

#: Metrics that are gated by the active/idle schedule.
GATED_METRICS = ("sm", "mem_bw", "pcie_tx", "pcie_rx")


class PhaseSchedule:
    """Alternating active/idle intervals covering ``[0, duration]``."""

    def __init__(self, boundaries: np.ndarray, starts_active: bool, duration_s: float) -> None:
        boundaries = np.asarray(boundaries, dtype=float)
        if boundaries.size and (np.any(np.diff(boundaries) <= 0) or boundaries[0] <= 0):
            raise WorkloadError("phase boundaries must be strictly increasing and positive")
        if boundaries.size and boundaries[-1] >= duration_s:
            raise WorkloadError("phase boundaries must lie inside the run")
        self.boundaries = boundaries
        self.starts_active = bool(starts_active)
        self.duration_s = float(duration_s)

    @classmethod
    def always(cls, duration_s: float, active: bool) -> "PhaseSchedule":
        """A schedule that is a single active (or idle) interval."""
        return cls(np.empty(0), active, duration_s)

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        duration_s: float,
        active_fraction: float,
        mean_active_s: float,
        active_cov: float,
        idle_cov: float,
        max_intervals: int = 20000,
    ) -> "PhaseSchedule":
        """Draw a renewal schedule hitting ``active_fraction`` on average.

        Interval lengths are lognormal with the given CoVs, so interval
        lengths are irregular and heavy-tailed.
        """
        if duration_s < 0:
            raise WorkloadError(f"negative duration {duration_s}")
        active_fraction = float(np.clip(active_fraction, 0.0, 1.0))
        if duration_s == 0 or active_fraction <= 0.005:
            return cls.always(duration_s, active=False)
        if active_fraction >= 0.995:
            return cls.always(duration_s, active=True)

        mean_active_s = max(mean_active_s, 1.0)
        mean_idle_s = mean_active_s * (1.0 - active_fraction) / active_fraction
        # Bound the schedule size for extremely long jobs by stretching
        # both interval scales (keeps the active fraction).
        cycle = mean_active_s + mean_idle_s
        expected = duration_s / cycle * 2.0
        if expected > max_intervals:
            stretch = expected / max_intervals
            mean_active_s *= stretch
            mean_idle_s *= stretch

        def draw_batch(mean: float, cov: float, n: int) -> np.ndarray:
            sigma = np.sqrt(np.log(1.0 + cov * cov))
            mu = np.log(mean) - sigma * sigma / 2.0
            return np.maximum(rng.lognormal(mu, sigma, n), 0.1)

        starts_active = bool(rng.random() < active_fraction)
        cycle_s = mean_active_s + mean_idle_s
        # Draw interval lengths in bulk, growing the batch until the
        # cumulative length covers the run.
        batch = max(int(duration_s / cycle_s * 2.5) + 8, 16)
        lengths = np.empty(0)
        while lengths.sum() < duration_s:
            # Redraw the whole alternating sequence at a larger size so
            # the active/idle parity stays intact.
            half = (batch + 1) // 2
            first = draw_batch(mean_active_s if starts_active else mean_idle_s,
                               active_cov if starts_active else idle_cov, half)
            second = draw_batch(mean_idle_s if starts_active else mean_active_s,
                                idle_cov if starts_active else active_cov, half)
            lengths = np.empty(2 * half)
            lengths[0::2] = first
            lengths[1::2] = second
            batch *= 2
        boundaries = np.cumsum(lengths)
        boundaries = boundaries[boundaries < duration_s]
        return cls(boundaries, starts_active, duration_s)

    # ------------------------------------------------------------------
    def active_at(self, times_s: np.ndarray) -> np.ndarray:
        """Boolean activity for each time offset."""
        times_s = np.asarray(times_s, dtype=float)
        segment = np.searchsorted(self.boundaries, times_s, side="right")
        if self.starts_active:
            return segment % 2 == 0
        return segment % 2 == 1

    def intervals(self) -> list[tuple[float, float, bool]]:
        """``(start, end, is_active)`` covering the whole run."""
        edges = np.concatenate(([0.0], self.boundaries, [self.duration_s]))
        out = []
        active = self.starts_active
        for a, b in zip(edges[:-1], edges[1:]):
            if b > a:
                out.append((float(a), float(b), active))
            active = not active
        return out

    def active_time_s(self) -> float:
        return sum(b - a for a, b, active in self.intervals() if active)

    def active_fraction(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.active_time_s() / self.duration_s


@dataclass
class MetricProcess:
    """One metric's deterministic fluctuation + burst structure."""

    level: float
    amplitudes: np.ndarray
    frequencies_hz: np.ndarray
    phases: np.ndarray
    burst_level: float
    burst_windows: np.ndarray  # shape (n, 2)

    #: Smooth fluctuation never reaches device saturation; only an
    #: explicit burst can cross the bottleneck-detection threshold
    #: (99 %).  Without this cap, noise peaks on high-level jobs would
    #: register as spurious bottlenecks.
    SMOOTH_CAP = 98.5

    def smooth_at(self, times_s: np.ndarray) -> np.ndarray:
        """Level + sinusoid fluctuation, unscaled and uncapped."""
        values = np.full(times_s.shape, self.level, dtype=float)
        for a, f, p in zip(self.amplitudes, self.frequencies_hz, self.phases):
            values += a * np.sin(2.0 * np.pi * f * times_s + p)
        return values

    def burst_mask_at(self, times_s: np.ndarray) -> np.ndarray:
        """Boolean mask of samples inside a burst window."""
        mask = np.zeros(times_s.shape, dtype=bool)
        for t0, t1 in self.burst_windows:
            mask |= (times_s >= t0) & (times_s < t1)
        return mask

    def values_at(
        self, times_s: np.ndarray, scale: float | np.ndarray = 1.0
    ) -> np.ndarray:
        """Metric value with per-GPU ``scale`` applied to the smooth
        part, capped below saturation; bursts overlay at full level.

        The cap comes *after* scaling so a GPU whose jitter scale
        exceeds 1 cannot push smooth fluctuation into the
        bottleneck-detection band — only explicit bursts saturate.

        ``scale`` may be an array broadcastable against ``times_s``
        (the batched path passes a ``(num_gpus, 1)`` column against
        ``(num_gpus, n)`` times); every operation is elementwise, so
        the batched result is bit-for-bit the per-GPU one.
        """
        scale = np.asarray(scale, dtype=float)
        smooth = np.clip(self.smooth_at(times_s), 0.0, None) * scale
        values = np.minimum(smooth, self.SMOOTH_CAP)
        if len(self.burst_windows) and np.any(scale > 0):
            mask = self.burst_mask_at(times_s) & (scale > 0)
            values[mask] = self.burst_level
        return values

    def analytic_peak(self, scale: float = 1.0) -> float:
        """Supremum of :meth:`values_at` for the given scale."""
        smooth_peak = min(
            max(self.level + float(self.amplitudes.sum()), 0.0) * scale, self.SMOOTH_CAP
        )
        if len(self.burst_windows) and scale > 0:
            return max(smooth_peak, self.burst_level)
        return smooth_peak


def build_metric_process(
    rng: np.random.Generator,
    level: float,
    noise_cov: float,
    burst_level: float,
    schedule: PhaseSchedule,
    num_bursts: int,
    num_harmonics: int = 4,
    burst_width_median_s: float = 3.0,
) -> MetricProcess:
    """Assemble the sinusoid + burst process for one metric.

    Sinusoid amplitudes are sized so the within-phase standard
    deviation equals ``noise_cov * level``; burst windows are placed
    inside active intervals (length-weighted) so dense sampling can
    observe them.
    """
    level = float(np.clip(level, 0.0, 100.0))
    target_std = noise_cov * level
    # std of a sum of sinusoids with amplitudes a_k is sqrt(sum a_k^2/2)
    amplitude = target_std * np.sqrt(2.0 / max(num_harmonics, 1))
    amplitudes = np.full(num_harmonics, amplitude)
    frequencies = np.exp(rng.uniform(np.log(1.0 / 600.0), np.log(1.0 / 5.0), num_harmonics))
    phases = rng.uniform(0.0, 2.0 * np.pi, num_harmonics)

    active_intervals = [(a, b) for a, b, act in schedule.intervals() if act]
    windows = []
    if active_intervals and burst_level > level and num_bursts > 0:
        lengths = np.asarray([b - a for a, b in active_intervals])
        probs = lengths / lengths.sum()
        for _ in range(num_bursts):
            idx = int(rng.choice(len(active_intervals), p=probs))
            a, b = active_intervals[idx]
            width = min(rng.lognormal(np.log(burst_width_median_s), 0.8), b - a)
            start = rng.uniform(a, max(b - width, a))
            windows.append((start, start + width))
    return MetricProcess(
        level=level,
        amplitudes=amplitudes,
        frequencies_hz=frequencies,
        phases=phases,
        burst_level=float(np.clip(burst_level, 0.0, 100.0)),
        burst_windows=np.asarray(windows).reshape(-1, 2),
    )


@dataclass
class PowerModel:
    """Linear power model over utilization metrics, clipped to board power."""

    idle_w: float
    per_sm: float
    per_mem: float
    per_pcie: float
    per_size: float
    max_w: float = 300.0

    def power(self, sm, mem_bw, pcie_tx, pcie_rx, mem_size):
        raw = (
            self.idle_w
            + self.per_sm * sm
            + self.per_mem * mem_bw
            + self.per_pcie * (pcie_tx + pcie_rx)
            + self.per_size * mem_size
        )
        return np.clip(raw, 0.0, self.max_w)


class JobActivityModel:
    """Deterministic ground truth for one job's GPUs.

    Implements the :class:`repro.monitor.nvidia_smi.ActivityModel`
    protocol.
    """

    def __init__(
        self,
        job_id: int,
        num_gpus: int,
        duration_s: float,
        schedule: PhaseSchedule,
        processes: dict[str, MetricProcess],
        gpu_scale: np.ndarray,
        power_model: PowerModel,
        mem_ramp_s: float = 120.0,
    ) -> None:
        if num_gpus < 1:
            raise WorkloadError(f"activity model needs >= 1 GPU, got {num_gpus}")
        if len(gpu_scale) != num_gpus:
            raise WorkloadError("gpu_scale length must equal num_gpus")
        for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx"):
            if name not in processes:
                raise WorkloadError(f"missing metric process {name!r}")
        self.job_id = job_id
        self._num_gpus = num_gpus
        self.duration_s = float(duration_s)
        self.schedule = schedule
        self.processes = processes
        self.gpu_scale = np.asarray(gpu_scale, dtype=float)
        self.power_model = power_model
        self.mem_ramp_s = min(mem_ramp_s, max(duration_s * 0.05, 1.0))

    # -- ActivityModel protocol ----------------------------------------
    @property
    def num_gpus(self) -> int:
        return self._num_gpus

    def metrics_at(self, times_s: np.ndarray, gpu_index: int) -> dict[str, np.ndarray]:
        times_s = np.asarray(times_s, dtype=float)
        scale = self._scale_for(gpu_index)
        active = self.schedule.active_at(times_s).astype(float)

        out: dict[str, np.ndarray] = {}
        for name in GATED_METRICS:
            out[name] = self.processes[name].values_at(times_s, scale) * active

        ramp = np.clip(times_s / self.mem_ramp_s, 0.0, 1.0)
        size_scale = 1.0 if scale > 0 else 0.0  # idle GPUs hold ~no memory
        out["mem_size"] = self.processes["mem_size"].values_at(times_s, size_scale) * ramp

        out["power_w"] = self.power_model.power(
            out["sm"], out["mem_bw"], out["pcie_tx"], out["pcie_rx"], out["mem_size"]
        )
        return out

    def metrics_at_all(self, times_s: np.ndarray) -> dict[str, np.ndarray]:
        """Batched :meth:`metrics_at` over every GPU of the job.

        ``times_s`` has shape ``(num_gpus, n)``: row ``g`` holds GPU
        ``g``'s sample offsets (rows may differ — stratified summary
        draws — or be broadcast copies — dense series).  Returns each
        metric as a ``(num_gpus, n)`` array whose row ``g`` is
        bit-for-bit ``metrics_at(times_s[g], g)[metric]``: the whole
        evaluation is elementwise ufuncs, with the per-GPU scale
        broadcast as a ``(num_gpus, 1)`` column, so batching changes
        neither operation order nor rounding.
        """
        times_s = np.asarray(times_s, dtype=float)
        if times_s.ndim != 2 or times_s.shape[0] != self._num_gpus:
            raise WorkloadError(
                f"job {self.job_id}: batched times must have shape "
                f"({self._num_gpus}, n), got {times_s.shape}"
            )
        scale = self.gpu_scale[:, None]
        active = self.schedule.active_at(times_s).astype(float)

        out: dict[str, np.ndarray] = {}
        for name in GATED_METRICS:
            out[name] = self.processes[name].values_at(times_s, scale) * active

        ramp = np.clip(times_s / self.mem_ramp_s, 0.0, 1.0)
        # idle GPUs hold ~no memory, exactly as in metrics_at
        size_scale = (self.gpu_scale > 0).astype(float)[:, None]
        out["mem_size"] = self.processes["mem_size"].values_at(times_s, size_scale) * ramp

        out["power_w"] = self.power_model.power(
            out["sm"], out["mem_bw"], out["pcie_tx"], out["pcie_rx"], out["mem_size"]
        )
        return out

    def analytic_max(self, gpu_index: int) -> dict[str, float]:
        scale = self._scale_for(gpu_index)
        out: dict[str, float] = {}
        levels: dict[str, float] = {}
        any_active = self.schedule.active_time_s() > 0
        for name in GATED_METRICS:
            peak = self.processes[name].analytic_peak(scale)
            out[name] = float(peak if any_active else 0.0)
            levels[name] = float(
                min(max(self.processes[name].level, 0.0) * scale, 100.0) if any_active else 0.0
            )
        size_scale = 1.0 if scale > 0 else 0.0
        out["mem_size"] = float(self.processes["mem_size"].analytic_peak(size_scale))
        levels["mem_size"] = float(
            min(max(self.processes["mem_size"].level, 0.0), 100.0) * size_scale
        )
        # Peak power happens while *one* metric bursts and the others
        # sit at their base levels — metric maxima occur at different
        # times (paper Sec. III), so summing them would overestimate.
        power_peak = 0.0
        for name in ("sm", "mem_bw", "pcie_tx", "pcie_rx", "mem_size"):
            snapshot = dict(levels)
            snapshot[name] = out[name]
            power_peak = max(
                power_peak,
                float(
                    self.power_model.power(
                        snapshot["sm"],
                        snapshot["mem_bw"],
                        snapshot["pcie_tx"],
                        snapshot["pcie_rx"],
                        snapshot["mem_size"],
                    )
                ),
            )
        out["power_w"] = power_peak
        return out

    # ------------------------------------------------------------------
    def _scale_for(self, gpu_index: int) -> float:
        if not 0 <= gpu_index < self._num_gpus:
            raise WorkloadError(
                f"job {self.job_id}: GPU index {gpu_index} out of range [0, {self._num_gpus})"
            )
        return float(self.gpu_scale[gpu_index])

    @property
    def idle_gpu_count(self) -> int:
        return int(np.sum(self.gpu_scale == 0.0))
