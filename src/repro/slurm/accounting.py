"""Convert simulation records into an sacct-style accounting table.

This is the Slurm half of the paper's combined dataset: one row per
job with scheduler-visible fields (times, sizes, exit state).  The GPU
half comes from :mod:`repro.monitor` and the two are joined on
``job_id`` exactly as described in Sec. II ("both datasets are combined
using job Ids to create a single dataset").
"""

from __future__ import annotations

from typing import Iterable

from repro.frame import Table
from repro.slurm.job import JobRecord


def accounting_table(records: Iterable[JobRecord]) -> Table:
    """Build the sacct-like table (one row per finished job)."""
    rows = []
    for record in records:
        request = record.request
        rows.append(
            {
                "job_id": request.job_id,
                "user": request.user,
                "interface": request.interface,
                "num_gpus": request.num_gpus,
                "cores": request.cores,
                "memory_gb": request.memory_gb,
                "submit_time_s": request.submit_time_s,
                "start_time_s": record.start_time_s,
                "end_time_s": record.end_time_s,
                "wait_time_s": record.wait_time_s,
                "run_time_s": record.run_time_s,
                "wait_fraction": record.wait_fraction,
                "num_nodes": len(record.nodes),
                "gpu_hours": record.gpu_hours,
                "exit_condition": record.exit_condition.value,
                "lifecycle_class": record.lifecycle_class,
                "time_limit_s": request.time_limit_s,
            }
        )
    columns = [
        "job_id", "user", "interface", "num_gpus", "cores", "memory_gb",
        "submit_time_s", "start_time_s", "end_time_s", "wait_time_s",
        "run_time_s", "wait_fraction", "num_nodes", "gpu_hours",
        "exit_condition", "lifecycle_class", "time_limit_s",
    ]
    return Table.from_rows(rows, columns=columns)
