"""Tests for phase schedules and activity models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.activity import (
    JobActivityModel,
    MetricProcess,
    PhaseSchedule,
    PowerModel,
    build_metric_process,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPhaseSchedule:
    def test_always_active(self):
        schedule = PhaseSchedule.always(100.0, active=True)
        assert schedule.active_fraction() == 1.0
        assert schedule.active_at(np.asarray([0.0, 50.0])).all()

    def test_always_idle(self):
        schedule = PhaseSchedule.always(100.0, active=False)
        assert schedule.active_fraction() == 0.0

    def test_generate_zero_fraction(self, rng):
        schedule = PhaseSchedule.generate(rng, 1000.0, 0.0, 60.0, 1.0, 1.0)
        assert schedule.active_time_s() == 0.0

    def test_generate_full_fraction(self, rng):
        schedule = PhaseSchedule.generate(rng, 1000.0, 1.0, 60.0, 1.0, 1.0)
        assert schedule.active_fraction() == 1.0

    def test_generate_hits_target_fraction_on_long_runs(self, rng):
        fractions = [
            PhaseSchedule.generate(rng, 2e5, 0.7, 60.0, 1.0, 1.0).active_fraction()
            for _ in range(10)
        ]
        assert np.mean(fractions) == pytest.approx(0.7, abs=0.08)

    def test_intervals_cover_duration(self, rng):
        schedule = PhaseSchedule.generate(rng, 5000.0, 0.5, 120.0, 1.5, 1.5)
        intervals = schedule.intervals()
        assert intervals[0][0] == 0.0
        assert intervals[-1][1] == pytest.approx(5000.0)
        for (a0, b0, s0), (a1, b1, s1) in zip(intervals, intervals[1:]):
            assert b0 == pytest.approx(a1)
            assert s0 != s1  # strictly alternating

    def test_active_at_matches_intervals(self, rng):
        schedule = PhaseSchedule.generate(rng, 5000.0, 0.5, 120.0, 1.5, 1.5)
        for a, b, active in schedule.intervals():
            mid = (a + b) / 2.0
            assert schedule.active_at(np.asarray([mid]))[0] == active

    def test_interval_cap_stretches_not_explodes(self, rng):
        schedule = PhaseSchedule.generate(
            rng, 1e7, 0.5, 1.0, 1.0, 1.0, max_intervals=1000
        )
        assert len(schedule.boundaries) <= 1200

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule(np.asarray([5.0, 3.0]), True, 10.0)
        with pytest.raises(WorkloadError):
            PhaseSchedule(np.asarray([15.0]), True, 10.0)

    def test_negative_duration_rejected(self, rng):
        with pytest.raises(WorkloadError):
            PhaseSchedule.generate(rng, -1.0, 0.5, 60.0, 1.0, 1.0)


class TestMetricProcess:
    def test_smooth_values_near_level(self, rng):
        process = build_metric_process(
            rng, level=50.0, noise_cov=0.1, burst_level=50.0,
            schedule=PhaseSchedule.always(1000.0, True), num_bursts=0,
        )
        values = process.values_at(np.linspace(0, 1000, 500))
        assert values.mean() == pytest.approx(50.0, rel=0.15)
        assert values.std() == pytest.approx(5.0, rel=0.5)

    def test_burst_reaches_burst_level(self, rng):
        schedule = PhaseSchedule.always(1000.0, True)
        process = build_metric_process(
            rng, level=10.0, noise_cov=0.05, burst_level=100.0,
            schedule=schedule, num_bursts=3,
        )
        assert len(process.burst_windows) == 3
        dense = process.values_at(np.linspace(0, 1000, 20000))
        assert dense.max() == pytest.approx(100.0)

    def test_bursts_only_in_active_intervals(self, rng):
        schedule = PhaseSchedule.generate(rng, 10000.0, 0.3, 120.0, 1.0, 1.0)
        process = build_metric_process(
            rng, level=10.0, noise_cov=0.05, burst_level=100.0,
            schedule=schedule, num_bursts=5,
        )
        for t0, t1 in process.burst_windows:
            assert schedule.active_at(np.asarray([t0]))[0]

    def test_no_bursts_when_idle_schedule(self, rng):
        process = build_metric_process(
            rng, level=10.0, noise_cov=0.05, burst_level=100.0,
            schedule=PhaseSchedule.always(100.0, False), num_bursts=5,
        )
        assert len(process.burst_windows) == 0

    def test_smooth_cap_blocks_saturation(self, rng):
        process = build_metric_process(
            rng, level=97.0, noise_cov=0.3, burst_level=97.0,
            schedule=PhaseSchedule.always(1000.0, True), num_bursts=0,
        )
        values = process.values_at(np.linspace(0, 1000, 5000), scale=1.2)
        assert values.max() <= MetricProcess.SMOOTH_CAP

    def test_analytic_peak_bounds_values(self, rng):
        process = build_metric_process(
            rng, level=40.0, noise_cov=0.2, burst_level=80.0,
            schedule=PhaseSchedule.always(1000.0, True), num_bursts=2,
        )
        dense = process.values_at(np.linspace(0, 1000, 50000))
        assert dense.max() <= process.analytic_peak() + 1e-9


class TestJobActivityModel:
    def make_model(self, rng, num_gpus=1, gpu_scale=None, duration=600.0, frac=0.8):
        schedule = PhaseSchedule.generate(rng, duration, frac, 60.0, 1.0, 1.0)
        processes = {
            name: build_metric_process(
                rng, level=30.0, noise_cov=0.1, burst_level=60.0,
                schedule=schedule, num_bursts=1,
            )
            for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx")
        }
        if gpu_scale is None:
            gpu_scale = np.ones(num_gpus)
        return JobActivityModel(
            job_id=1, num_gpus=num_gpus, duration_s=duration,
            schedule=schedule, processes=processes,
            gpu_scale=np.asarray(gpu_scale),
            power_model=PowerModel(25.0, 1.25, 0.4, 0.03, 0.2),
        )

    def test_metrics_gated_by_schedule(self, rng):
        model = self.make_model(rng, frac=0.5)
        times = np.linspace(0, 600, 2000)
        sm = model.metrics_at(times, 0)["sm"]
        active = model.schedule.active_at(times)
        assert (sm[~active] == 0.0).all()
        assert sm[active].mean() > 10.0

    def test_memory_persists_through_idle(self, rng):
        model = self.make_model(rng, frac=0.5)
        times = np.linspace(300, 600, 500)  # past the ramp
        size = model.metrics_at(times, 0)["mem_size"]
        assert (size > 0).all()

    def test_memory_ramps_from_zero(self, rng):
        model = self.make_model(rng)
        out = model.metrics_at(np.asarray([0.0]), 0)
        assert out["mem_size"][0] == pytest.approx(0.0, abs=1.0)

    def test_idle_gpu_all_zero(self, rng):
        model = self.make_model(rng, num_gpus=2, gpu_scale=[1.0, 0.0])
        out = model.metrics_at(np.linspace(0, 600, 100), 1)
        for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx"):
            assert (out[name] == 0.0).all()
        assert (out["power_w"] == 25.0).all()
        assert model.idle_gpu_count == 1

    def test_power_derived_from_metrics(self, rng):
        model = self.make_model(rng)
        times = np.linspace(0, 600, 200)
        out = model.metrics_at(times, 0)
        expected = 25.0 + 1.25 * out["sm"] + 0.4 * out["mem_bw"] + 0.03 * (
            out["pcie_tx"] + out["pcie_rx"]
        ) + 0.2 * out["mem_size"]
        assert out["power_w"] == pytest.approx(np.clip(expected, 0, 300))

    def test_analytic_max_dominates_dense_samples(self, rng):
        model = self.make_model(rng)
        times = np.linspace(0, 600, 30000)
        out = model.metrics_at(times, 0)
        peaks = model.analytic_max(0)
        for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx"):
            assert out[name].max() <= peaks[name] + 1e-6

    def test_gpu_index_out_of_range(self, rng):
        model = self.make_model(rng)
        with pytest.raises(WorkloadError):
            model.metrics_at(np.zeros(1), 1)

    def test_missing_process_rejected(self, rng):
        schedule = PhaseSchedule.always(10.0, True)
        with pytest.raises(WorkloadError, match="missing metric"):
            JobActivityModel(
                1, 1, 10.0, schedule, {}, np.ones(1),
                PowerModel(25.0, 1.25, 0.4, 0.03, 0.2),
            )

    def test_determinism_across_calls(self, rng):
        model = self.make_model(rng)
        times = np.linspace(0, 600, 100)
        first = model.metrics_at(times, 0)
        second = model.metrics_at(times, 0)
        for name in first:
            assert (first[name] == second[name]).all()

    def test_metrics_at_all_matches_per_gpu(self, rng):
        model = self.make_model(rng, num_gpus=3, gpu_scale=np.array([1.0, 0.5, 0.0]))
        times = rng.uniform(0, 600, (3, 50))
        batched = model.metrics_at_all(times)
        for gpu_index in range(3):
            single = model.metrics_at(times[gpu_index], gpu_index)
            for name in single:
                assert batched[name].shape == (3, 50)
                assert (batched[name][gpu_index] == single[name]).all()

    def test_metrics_at_all_rejects_bad_shape(self, rng):
        model = self.make_model(rng, num_gpus=2, gpu_scale=np.ones(2))
        with pytest.raises(WorkloadError, match="shape"):
            model.metrics_at_all(np.zeros(5))
        with pytest.raises(WorkloadError, match="shape"):
            model.metrics_at_all(np.zeros((3, 5)))


@given(
    st.floats(10.0, 1e5),
    st.floats(0.0, 1.0),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_schedule_fraction_in_bounds(duration, fraction, seed):
    rng = np.random.default_rng(seed)
    schedule = PhaseSchedule.generate(rng, duration, fraction, 60.0, 1.69, 1.26)
    assert 0.0 <= schedule.active_fraction() <= 1.0
    assert schedule.duration_s == duration
