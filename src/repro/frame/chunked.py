"""Out-of-core execution: :class:`ChunkedTable` and its streaming verbs.

A :class:`ChunkedTable` is a re-iterable stream of bounded-size
:class:`~repro.frame.table.Table` batches behind (a subset of) the same
verbs.  Transformations (``select``/``drop``/``rename``/``filter``/
``with_column``/``join`` against a broadcast table) stay lazy — each
builds a new chunked view whose chunks are produced on demand — while
terminal operations (``group_by(...).aggregate``, ``value_counts``,
``sketch``, ``moments``, ``materialize``, ``spill``) run one bounded-
memory pass.

Memory contract (the full verb-by-verb table lives in
docs/performance.md):

* lazy verbs hold at most one chunk at a time plus O(1) state;
* ``group_by`` aggregation holds O(groups) state
  (:class:`~repro.frame.groupby.StreamingAggregateState`);
* ``sketch`` holds O(k log(n/k)) state;
* ``spill`` streams chunks to ``.npz`` files and returns a file-backed
  view (re-iterable without re-running the producing pipeline);
* ``materialize``/``head``/``sort_by``-style whole-table operations are
  the explicit escape hatch back to :class:`Table`.

Exactness: chunked ``filter``/``join``/``value_counts``/``head`` and
the ``count``/``min``/``max``/``first``/``last`` reducers are
bit-for-bit identical to running the materialized kernel on
``materialize()``; ``sum``/``mean``/``std`` accumulate float partials
(deterministic for a fixed chunking); sketch quantiles carry a tracked
rank-error bound.  The streaming property suite pins all of this
against :mod:`repro.frame.reference`.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame.groupby import StreamingAggregateState
from repro.frame.sketch import DEFAULT_SKETCH_K, QuantileSketch, StreamingMoments
from repro.frame.table import Table, _unwrap, concat_tables
from repro.obs.runtime import get_metrics, get_tracer, record_event, record_peak_rss

__all__ = [
    "ChunkedTable",
    "concat_chunked",
    "merge_sorted_chunked",
    "adaptive_chunk_rows",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_CHUNK_BYTES",
]

#: Default rows per chunk: ~0.5 MiB per float64 column.
DEFAULT_CHUNK_ROWS = 65536

#: Adaptive chunk sizing target: bytes one resident chunk may occupy.
#: 8 MiB = ``DEFAULT_CHUNK_ROWS`` rows of a 16-float64-column table, so
#: tables of that shape chunk exactly as before; wider tables get
#: proportionally fewer rows per chunk and narrow ones more, keeping
#: the memory high-water mark shape-independent.
DEFAULT_CHUNK_BYTES = 8 * 1024 * 1024

#: Bounds for the adaptive row count: never slice finer than 1024 rows
#: (per-chunk overhead would dominate) or coarser than 2**20 rows.
_MIN_ADAPTIVE_ROWS = 1024
_MAX_ADAPTIVE_ROWS = 1 << 20


def adaptive_chunk_rows(
    row_bytes: float, target_bytes: int = DEFAULT_CHUNK_BYTES
) -> int:
    """Rows per chunk so one chunk occupies ~``target_bytes``.

    ``row_bytes`` is the estimated width of one row (see
    :meth:`Table.row_nbytes`); the result is clamped to
    ``[1024, 2**20]`` so degenerate widths cannot produce pathological
    chunking.
    """
    if row_bytes <= 0:
        return DEFAULT_CHUNK_ROWS
    rows = int(target_bytes / row_bytes)
    return max(_MIN_ADAPTIVE_ROWS, min(rows, _MAX_ADAPTIVE_ROWS))

ChunkSource = Callable[[], Iterator[Table]]


class ChunkedTable:
    """A re-iterable stream of table chunks behind the ``Table`` verbs.

    Construct via :meth:`Table.to_chunked`, :meth:`ChunkedTable.scan`,
    :func:`concat_chunked`, or directly from a sequence of tables / a
    zero-argument factory returning a fresh chunk iterator.  Factories
    make the view re-iterable without buffering: every pass calls the
    factory again (e.g. re-reads the spill files).
    """

    def __init__(
        self,
        chunks: Sequence[Table] | ChunkSource,
        *,
        column_names: Sequence[str] | None = None,
        num_rows: int | None = None,
    ) -> None:
        if callable(chunks):
            self._source: ChunkSource | None = chunks
            self._chunks: tuple[Table, ...] | None = None
        else:
            self._source = None
            self._chunks = tuple(chunks)
        self._column_names = None if column_names is None else tuple(column_names)
        self._num_rows = num_rows

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: Table, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "ChunkedTable":
        """Split a materialized table into a chunked view (zero-copy rows
        are not possible with fancy indexing, but chunks are produced
        lazily so only one slice is alive at a time)."""
        if chunk_rows < 1:
            raise FrameError(f"chunk_rows must be >= 1, got {chunk_rows}")

        def produce() -> Iterator[Table]:
            for start in range(0, table.num_rows, chunk_rows):
                yield table.take(np.arange(start, min(start + chunk_rows, table.num_rows)))

        return cls(produce, column_names=table.column_names, num_rows=table.num_rows)

    @classmethod
    def scan(cls, source: Any, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "ChunkedTable":
        """Open ``source`` as a chunked view.

        Accepts a :class:`Table` (split into chunks), a ``.csv`` or
        ``.jsonl`` path (streamed off disk), a directory of spill
        ``.npz`` files, or an iterable of tables.
        """
        from repro.frame.io import read_table_npz, scan_csv, scan_jsonl

        if isinstance(source, Table):
            return cls.from_table(source, chunk_rows)
        if isinstance(source, ChunkedTable):
            return source
        if isinstance(source, (str, Path)):
            path = Path(source)
            if path.is_dir():
                files = sorted(path.glob("*.npz"))
                if not files:
                    raise FrameError(f"no .npz spill files under {path}")
                return cls(lambda: (read_table_npz(f) for f in files))
            if path.suffix == ".csv":
                return cls(lambda: scan_csv(path, chunk_rows))
            if path.suffix == ".jsonl":
                return cls(lambda: scan_jsonl(path, chunk_rows))
            raise FrameError(
                f"cannot scan {path}: expected a .csv/.jsonl file or a directory of .npz chunks"
            )
        try:
            chunks = tuple(source)
        except TypeError:
            raise FrameError(f"cannot scan source of type {type(source).__name__}") from None
        return cls(chunks)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def chunks(self) -> Iterator[Table]:
        """Iterate the non-empty chunks (a fresh pass every call)."""
        produced = self._chunks if self._source is None else self._source()
        names = self._column_names
        for chunk in produced:
            if chunk.num_rows == 0:
                continue
            if names is None:
                names = self._column_names = chunk.column_names
            elif chunk.column_names != names:
                raise FrameError(
                    f"chunk columns {chunk.column_names} differ from {names}"
                )
            yield chunk

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names (peeks the first chunk when not yet known)."""
        if self._column_names is None:
            for _ in self.chunks():
                break
            if self._column_names is None:
                self._column_names = ()
        return self._column_names

    @property
    def num_rows(self) -> int:
        """Total rows; counted with one streaming pass when unknown."""
        if self._num_rows is None:
            self._num_rows = sum(chunk.num_rows for chunk in self.chunks())
        return self._num_rows

    def __contains__(self, name: object) -> bool:
        return name in self.column_names

    def __repr__(self) -> str:
        rows = "?" if self._num_rows is None else str(self._num_rows)
        names = ", ".join(self.column_names[:8])
        return f"ChunkedTable({rows} rows: {names})"

    def column(self, name: str) -> np.ndarray:
        raise FrameError(
            f"a ChunkedTable has no materialized column {name!r}; call "
            "materialize() for the full array, or stream it via sketch()/moments()"
        )

    __getitem__ = column

    # ------------------------------------------------------------------
    # Lazy transformations
    # ------------------------------------------------------------------
    def map_chunks(self, fn: Callable[[Table], Table], *, preserves_rows: bool = False) -> "ChunkedTable":
        """A lazy chunked view applying ``fn`` to every chunk."""
        out = ChunkedTable(lambda: (fn(chunk) for chunk in self.chunks()))
        if preserves_rows:
            out._num_rows = self._num_rows
        return out

    def select(self, names: Sequence[str]) -> "ChunkedTable":
        names = tuple(names)
        out = self.map_chunks(lambda c: c.select(names), preserves_rows=True)
        out._column_names = names
        return out

    def drop(self, names: Sequence[str]) -> "ChunkedTable":
        dropped = set(names)
        keep = tuple(n for n in self.column_names if n not in dropped)
        missing = dropped - set(self.column_names)
        if missing:
            raise FrameError(f"cannot drop missing column(s) {sorted(missing)}")
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "ChunkedTable":
        mapping = dict(mapping)
        out = self.map_chunks(lambda c: c.rename(mapping), preserves_rows=True)
        if self._column_names is not None:
            out._column_names = tuple(mapping.get(n, n) for n in self._column_names)
        return out

    def with_column(self, name: str, fn: Callable[[Table], Any]) -> "ChunkedTable":
        """Add/replace a column computed per chunk (``fn`` must be a
        callable of the chunk — broadcast scalars cannot know chunk
        lengths up front)."""
        if not callable(fn):
            raise FrameError("ChunkedTable.with_column requires a callable of the chunk")
        out = self.map_chunks(lambda c: c.with_computed(name, fn), preserves_rows=True)
        if self._column_names is not None:
            names = self._column_names
            out._column_names = names if name in names else names + (name,)
        return out

    def filter(self, mask: Callable[[Table], Any]) -> "ChunkedTable":
        """Keep rows where the per-chunk predicate is True.

        Only callables are accepted: a whole-table boolean mask would
        require knowing global row positions, which a stream does not
        have.
        """
        if not callable(mask):
            raise FrameError(
                "ChunkedTable.filter requires a callable predicate; whole-table "
                "masks need materialize()"
            )
        out = self.map_chunks(lambda c: c.filter(mask))
        # Filtering never changes the schema, so an all-filtered-out
        # stream still materializes with its columns intact.
        out._column_names = self._column_names
        return out

    def join(self, other: Table, on: str, how: str = "inner", suffix: str = "_right") -> "ChunkedTable":
        """Broadcast-join a *materialized* table onto every chunk.

        The right side must be a small :class:`Table` (it is held in
        memory and probed once per chunk); joining two chunked tables
        would need a shuffle, which this engine does not do.
        """
        if isinstance(other, ChunkedTable):
            raise FrameError(
                "ChunkedTable.join requires a materialized right side; "
                "materialize() the smaller table first"
            )
        return self.map_chunks(lambda c: c.join(other, on=on, how=how, suffix=suffix))

    def join_sorted(
        self,
        right: "Table | ChunkedTable",
        on: str,
        how: str = "inner",
        suffix: str = "_right",
    ) -> "ChunkedTable":
        """Merge-join a key-sorted right stream onto this key-sorted stream.

        Both sides must be non-decreasing on ``on`` (the key columns
        the sharded build merges by already are) and the right key must
        be unique, as in :meth:`Table.join`.  Unlike :meth:`join`, the
        right side is consumed as a stream: only the right rows that
        can still match the current left chunk are buffered, so joining
        two spilled island streams holds O(chunk) memory instead of
        materializing either side.  Row content is bit-identical to
        ``materialize().join(right.materialize(), ...)``.
        """
        if how not in ("inner", "left"):
            raise FrameError(f"unsupported join type {how!r}")
        right_view = right if isinstance(right, ChunkedTable) else ChunkedTable((right,))

        def produce() -> Iterator[Table]:
            from repro.frame.table import _sortable

            right_iter = right_view.chunks()
            buffer: Table | None = None
            exhausted = False
            chunks_in = 0
            rows_in = 0
            for chunk in self.chunks():
                chunks_in += 1
                rows_in += chunk.num_rows
                left_keys = _sortable(chunk.column(on))
                left_max = left_keys[-1]
                while not exhausted and (
                    buffer is None
                    or buffer.num_rows == 0
                    or not _sortable(buffer.column(on))[-1] > left_max
                ):
                    incoming = next(right_iter, None)
                    if incoming is None:
                        exhausted = True
                        break
                    buffer = (
                        incoming
                        if buffer is None or buffer.num_rows == 0
                        else concat_tables([buffer, incoming])
                    )
                if buffer is None or buffer.num_rows == 0:
                    matchable = Table(
                        {name: [] for name in (right_view.column_names or (on,))}
                    )
                else:
                    buffer_keys = _sortable(buffer.column(on))
                    matchable = buffer.filter(~(buffer_keys > left_max))
                    # Rows below this chunk's max key can never match a
                    # later chunk (left is non-decreasing); the boundary
                    # key itself may repeat in the next left chunk.
                    buffer = buffer.filter(~(buffer_keys < left_max))
                joined = chunk.join(matchable, on=on, how=how, suffix=suffix)
                if joined.num_rows:
                    yield joined
            _count_stream_op("join_sorted", chunks_in, rows_in)

        out = ChunkedTable(produce)
        left_names = self.column_names
        right_names = right_view.column_names
        out._column_names = left_names + tuple(
            name if name not in left_names else name + suffix
            for name in right_names
            if name != on
        )
        if how == "left":
            out._num_rows = self._num_rows
        return out

    def head(self, n: int = 5) -> Table:
        """The first ``n`` rows, materialized (stops the scan early)."""
        taken: list[Table] = []
        remaining = n
        for chunk in self.chunks():
            if remaining <= 0:
                break
            taken.append(chunk.head(remaining))
            remaining -= taken[-1].num_rows
        return concat_tables(taken)

    # ------------------------------------------------------------------
    # Terminal operations
    # ------------------------------------------------------------------
    def group_by(self, *names: str) -> "StreamingGroupBy":
        """Streaming group-by; see :class:`StreamingGroupBy`."""
        return StreamingGroupBy(self, names)

    def value_counts(self, name: str) -> Table:
        """Count occurrences of each value, most frequent first (ties
        broken by the value's string form) — bit-for-bit the
        materialized :meth:`Table.value_counts` contract, in one
        O(distinct values) pass."""
        counts: dict[Any, int] = {}
        rows = 0
        chunks = 0
        tracer = get_tracer()
        with tracer.span("frame.stream.value_counts", category="frame", column=name) as span:
            for chunk in self.chunks():
                chunks += 1
                rows += chunk.num_rows
                partial = chunk.value_counts(name)
                for value, count in zip(
                    (_unwrap(v) for v in partial.column(name)),
                    partial.column("count").tolist(),
                ):
                    counts[value] = counts.get(value, 0) + count
            span.set(chunks=chunks, rows=rows, groups=len(counts))
        _count_stream_op("value_counts", chunks, rows)
        if not counts:
            return Table.from_rows([])
        values = list(counts)
        totals = np.asarray(list(counts.values()), dtype=np.int64)
        labels = np.asarray([str(v) for v in values])
        order = np.lexsort((labels, -totals))
        column = np.empty(len(values), dtype=object)
        column[:] = values
        out = Table({name: column[order], "count": totals[order]})
        return out

    def sketch(self, name: str, k: int = DEFAULT_SKETCH_K) -> QuantileSketch:
        """One-pass mergeable quantile/ECDF sketch of a column."""
        sketch = QuantileSketch(k=k)
        chunks = 0
        tracer = get_tracer()
        with tracer.span("frame.stream.sketch", category="frame", column=name, k=k) as span:
            for chunk in self.chunks():
                chunks += 1
                sketch.update(chunk.column(name))
            span.set(chunks=chunks, rows=sketch.num_samples)
        _count_stream_op("sketch", chunks, sketch.num_samples)
        return sketch

    def moments(self, name: str) -> StreamingMoments:
        """One-pass count/sum/min/max/mean/std of a column."""
        moments = StreamingMoments()
        chunks = 0
        tracer = get_tracer()
        with tracer.span("frame.stream.moments", category="frame", column=name) as span:
            for chunk in self.chunks():
                chunks += 1
                moments.update(chunk.column(name))
            span.set(chunks=chunks, rows=moments.count)
        _count_stream_op("moments", chunks, moments.count)
        return moments

    def materialize(self) -> Table:
        """Concatenate every chunk back into one :class:`Table`."""
        tracer = get_tracer()
        with tracer.span("frame.stream.materialize", category="frame") as span:
            parts = list(self.chunks())
            if parts:
                table = concat_tables(parts)
            else:
                table = Table({name: [] for name in (self._column_names or ())})
            span.set(chunks=len(parts), rows=table.num_rows)
        _count_stream_op("materialize", len(parts), table.num_rows)
        self._num_rows = table.num_rows
        record_peak_rss()
        return table

    def spill(
        self,
        directory: str | Path | None = None,
        codec: "SpillCodec | None | str" = "default",
    ) -> "ChunkedTable":
        """Stream every chunk to ``.npz`` files; return the file-backed view.

        Re-iterating the result re-reads the files instead of re-running
        the producing pipeline, so a spilled view can be scanned many
        times for the cost of one upstream pass.

        Chunks are written through the spill codec
        (:class:`~repro.frame.codec.SpillCodec`): by default the
        lossless policy, whose decoded chunks are bit-identical to the
        originals; pass a codec with ``quantise=...`` to opt named
        float columns into lossy quantisation, or ``codec=None`` for
        the legacy raw layout.  Emits
        ``repro_frame_spill_chunks_total``,
        ``repro_frame_spill_bytes_total`` (encoded bytes on disk),
        ``repro_frame_spill_raw_bytes_total`` (what the raw layout
        would have written) and a ``frame.spill.codec`` event carrying
        the raw bytes, encoded bytes, and compression ratio.
        """
        from repro.frame.codec import LOSSLESS
        from repro.frame.io import read_table_npz, table_raw_bytes, write_table_npz

        if codec == "default":
            codec = LOSSLESS
        target = Path(
            tempfile.mkdtemp(prefix="repro-spill-") if directory is None else directory
        )
        target.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        rows = 0
        raw_bytes = 0
        spilled_bytes = 0
        tracer = get_tracer()
        with tracer.span("frame.stream.spill", category="frame", directory=str(target)) as span:
            for chunk in self.chunks():
                path = write_table_npz(
                    chunk, target / f"chunk_{len(paths):06d}.npz", codec=codec
                )
                paths.append(path)
                rows += chunk.num_rows
                raw_bytes += table_raw_bytes(chunk)
                spilled_bytes += path.stat().st_size
            span.set(chunks=len(paths), rows=rows, bytes=spilled_bytes)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_frame_spill_chunks_total",
                help="table chunks spilled to disk by the streaming engine",
            ).inc(len(paths))
            metrics.counter(
                "repro_frame_spill_bytes_total",
                help="bytes of spill files written by the streaming engine (encoded)",
            ).inc(spilled_bytes)
            metrics.counter(
                "repro_frame_spill_raw_bytes_total",
                help="bytes the raw (uncodec'd) spill layout would have written",
            ).inc(raw_bytes)
        _count_stream_op("spill", len(paths), rows)
        record_event(
            "frame.spill",
            category="frame",
            directory=str(target),
            chunks=len(paths),
            rows=rows,
            bytes=spilled_bytes,
        )
        if codec is not None:
            record_event(
                "frame.spill.codec",
                category="frame",
                directory=str(target),
                raw_bytes=raw_bytes,
                encoded_bytes=spilled_bytes,
                ratio=round(raw_bytes / spilled_bytes, 3) if spilled_bytes else 0.0,
            )
        record_peak_rss()
        self._num_rows = rows
        return ChunkedTable(
            lambda: (read_table_npz(p) for p in paths),
            column_names=self._column_names,
            num_rows=rows,
        )


class StreamingGroupBy:
    """Streaming group-by over a :class:`ChunkedTable`.

    Mirrors the :class:`~repro.frame.groupby.GroupBy` aggregation
    surface (``aggregate``/``sizes``/``mean``/``sum``) with O(groups)
    state.  Iteration over group sub-tables is a materialized-only
    feature: the stream cannot hand out per-group row sets without
    buffering them.
    """

    def __init__(self, source: ChunkedTable, keys: Sequence[str]) -> None:
        if not keys:
            raise FrameError("group_by requires at least one key column")
        self._source = source
        self._keys = tuple(keys)

    def _run(self, spec: Mapping[str, Sequence[str] | str]) -> StreamingAggregateState:
        state = StreamingAggregateState(self._keys, spec)
        chunks = 0
        rows = 0
        tracer = get_tracer()
        with tracer.span(
            "frame.stream.aggregate", category="frame", keys=",".join(self._keys)
        ) as span:
            for chunk in self._source.chunks():
                chunks += 1
                rows += chunk.num_rows
                state.update(chunk)
            span.set(chunks=chunks, rows=rows, groups=state.num_groups)
        _count_stream_op("aggregate", chunks, rows)
        record_peak_rss()
        return state

    def aggregate(self, spec: Mapping[str, Sequence[str] | str]) -> Table:
        """Aggregate columns per group; see :meth:`GroupBy.aggregate`.

        Supports the streamable reducers
        (:data:`~repro.frame.groupby.STREAMABLE_REDUCERS`); ``median``
        requires ``materialize()`` or a quantile sketch.
        """
        return self._run(spec).result()

    def sizes(self) -> Table:
        """Group keys and row counts, like :meth:`GroupBy.sizes`."""
        return self._run({}).sizes()

    def mean(self, column: str) -> Table:
        return self.aggregate({column: "mean"})

    def sum(self, column: str) -> Table:
        return self.aggregate({column: "sum"})


def concat_chunked(sources: Iterable[Table | ChunkedTable]) -> ChunkedTable:
    """Chain tables and chunked tables into one lazy chunked view.

    The inputs are *not* materialized together: chunks stream through
    in order, so the result's memory high-water mark is one chunk.
    """
    parts = list(sources)
    for part in parts:
        if not isinstance(part, (Table, ChunkedTable)):
            raise FrameError(
                f"concat_chunked accepts Table or ChunkedTable, got {type(part).__name__}"
            )

    def produce() -> Iterator[Table]:
        for part in parts:
            if isinstance(part, Table):
                if part.num_rows:
                    yield part
            else:
                yield from part.chunks()

    known: int | None = 0
    for part in parts:
        part_rows = part.num_rows if isinstance(part, Table) else part._num_rows
        if part_rows is None:
            known = None
            break
        known += part_rows
    return ChunkedTable(produce, num_rows=known)


def merge_sorted_chunked(
    sources: Sequence[ChunkedTable],
    keys: Sequence[str],
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> ChunkedTable:
    """K-way merge per-source key-sorted chunk streams into one
    globally key-sorted :class:`ChunkedTable`.

    Each source must already be non-decreasing on ``keys`` (lexico-
    graphic, the :meth:`Table.sort_by` order); the result is then
    **bit-identical** to ``concat_tables(materialized sources)
    .sort_by(*keys)`` — ties across sources resolve in source order,
    matching the stable concat+sort — while only ever holding one in-
    flight chunk per source plus the current output segment.  This is
    the verb the sharded build's parent uses to merge island spill
    directories without materializing the trace.
    """
    from repro.frame.table import _sortable

    keys = tuple(keys)
    if not keys:
        raise FrameError("merge_sorted_chunked requires at least one key column")
    parts = list(sources)
    if not parts:
        raise FrameError("merge_sorted_chunked requires at least one source")

    def row_count_le(chunk: Table, start: int, bounds: tuple) -> int:
        """Rows (from ``start``) whose key tuple is <= ``bounds``; the
        chunk is key-sorted, so the mask is a prefix and its sum is the
        slice length."""
        size = chunk.num_rows - start
        le = np.zeros(size, dtype=bool)
        eq = np.ones(size, dtype=bool)
        for name, bound in zip(keys, bounds):
            values = _sortable(chunk.column(name))[start:]
            le |= eq & (values < bound)
            eq &= values == bound
        le |= eq
        return int(le.sum())

    def last_key(chunk: Table) -> tuple:
        return tuple(_sortable(chunk.column(name))[-1] for name in keys)

    def first_key(chunk: Table, start: int) -> tuple:
        return tuple(_sortable(chunk.column(name))[start] for name in keys)

    def produce() -> Iterator[Table]:
        iters = [part.chunks() for part in parts]
        heads: list[Table | None] = [next(it, None) for it in iters]
        offsets = [0] * len(parts)
        chunks_out = 0
        rows_out = 0
        while True:
            live = [i for i, head in enumerate(heads) if head is not None]
            if not live:
                break
            boundary = min(last_key(heads[i]) for i in live)
            segment: list[Table] = []
            for i in live:
                while heads[i] is not None and not first_key(heads[i], offsets[i]) > boundary:
                    count = row_count_le(heads[i], offsets[i], boundary)
                    stop = offsets[i] + count
                    taken = heads[i].take(np.arange(offsets[i], stop))
                    if taken.num_rows:
                        segment.append(taken)
                    if stop == heads[i].num_rows:
                        heads[i] = next(iters[i], None)
                        offsets[i] = 0
                    else:
                        offsets[i] = stop
                        break
            merged = segment[0] if len(segment) == 1 else concat_tables(segment)
            merged = merged.sort_by(*keys)
            for start in range(0, merged.num_rows, chunk_rows):
                piece = merged.take(
                    np.arange(start, min(start + chunk_rows, merged.num_rows))
                )
                chunks_out += 1
                rows_out += piece.num_rows
                yield piece
        _count_stream_op("merge", chunks_out, rows_out)
        record_event(
            "frame.merge",
            category="frame",
            sources=len(parts),
            chunks=chunks_out,
            rows=rows_out,
        )

    known: int | None = 0
    names: tuple[str, ...] | None = None
    for part in parts:
        if part._num_rows is None:
            known = None
            break
        known += part._num_rows
    for part in parts:
        if part._column_names is not None:
            names = part._column_names
            break
    return ChunkedTable(produce, column_names=names, num_rows=known)


def _count_stream_op(op: str, chunks: int, rows: int) -> None:
    """Per-terminal-op chunk/row counters for the metric catalog."""
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_frame_stream_chunks_total",
            help="chunks consumed by streaming frame operations",
            op=op,
        ).inc(chunks)
        metrics.counter(
            "repro_frame_stream_rows_total",
            help="rows consumed by streaming frame operations",
            op=op,
        ).inc(rows)
