"""Fig 7: within-run variability and the bottleneck radar."""

from repro.figures.registry import run_figure


def test_fig07_variability_and_bottlenecks(benchmark, dataset):
    result = benchmark(run_figure, "fig07", dataset)
    # shape: SM is the dominant bottleneck; memory BW essentially never
    assert (
        result.get("sm bottleneck fraction").measured
        > result.get("mem_bw bottleneck fraction").measured
    )
