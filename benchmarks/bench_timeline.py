"""Cluster load timeline and capacity planning."""

from repro.analysis.timeline import daily_gpu_hours, gpu_occupancy, surge_visibility


def test_occupancy_timeline(benchmark, dataset):
    timeline = benchmark(gpu_occupancy, dataset.records, dataset.spec.total_gpus)
    # the paper's provisioning claim: capacity exceeds demand
    assert timeline.mean_utilization < 0.7


def test_surge_visibility(benchmark, dataset):
    daily = daily_gpu_hours(dataset.records)
    table = benchmark(
        surge_visibility, daily, dataset.config.knobs.deadline_windows
    )
    assert all(r["observed_ratio"] > 0.9 for r in table.iter_rows())
