"""Tests for repro.distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    BoundedPareto,
    Categorical,
    Constant,
    LogNormal,
    Mixture,
    QuantileDistribution,
    Uniform,
    clipped,
)
from repro.errors import CalibrationError


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestQuantileDistribution:
    def test_quantile_hits_anchors(self):
        dist = QuantileDistribution([(0.0, 0.0), (0.5, 10.0), (1.0, 100.0)])
        assert dist.quantile(0.5) == pytest.approx(10.0)
        assert dist.quantile(0.0) == pytest.approx(0.0)
        assert dist.quantile(1.0) == pytest.approx(100.0)

    def test_quantile_interpolates(self):
        dist = QuantileDistribution([(0.0, 0.0), (1.0, 10.0)])
        assert dist.quantile(0.25) == pytest.approx(2.5)

    def test_cdf_inverts_quantile(self):
        dist = QuantileDistribution([(0.0, 1.0), (0.5, 5.0), (1.0, 9.0)])
        for p in (0.1, 0.4, 0.7, 0.95):
            assert dist.cdf(dist.quantile(p)) == pytest.approx(p, abs=1e-9)

    def test_samples_match_anchored_median(self, rng):
        dist = QuantileDistribution([(0.0, 0.0), (0.5, 30.0), (1.0, 100.0)])
        samples = dist.sample(rng, 20000)
        assert np.median(samples) == pytest.approx(30.0, rel=0.05)

    def test_log_space_heavy_tail(self, rng):
        dist = QuantileDistribution(
            [(0.0, 1.0), (0.5, 30.0), (1.0, 10000.0)], log_space=True
        )
        samples = dist.sample(rng, 20000)
        assert np.median(samples) == pytest.approx(30.0, rel=0.1)
        assert samples.max() <= 10000.0
        assert samples.min() >= 1.0

    def test_support(self):
        dist = QuantileDistribution([(0.25, 2.0), (0.75, 8.0)])
        assert dist.support == (2.0, 8.0)

    def test_scalar_sample(self, rng):
        dist = QuantileDistribution([(0.0, 0.0), (1.0, 1.0)])
        value = dist.sample(rng)
        assert isinstance(value, float)

    def test_decreasing_probs_rejected(self):
        with pytest.raises(CalibrationError, match="increasing"):
            QuantileDistribution([(0.5, 1.0), (0.4, 2.0)])

    def test_decreasing_values_rejected(self):
        with pytest.raises(CalibrationError, match="non-decreasing"):
            QuantileDistribution([(0.1, 5.0), (0.9, 1.0)])

    def test_single_anchor_rejected(self):
        with pytest.raises(CalibrationError):
            QuantileDistribution([(0.5, 1.0)])

    def test_log_space_nonpositive_rejected(self):
        with pytest.raises(CalibrationError, match="positive"):
            QuantileDistribution([(0.0, 0.0), (1.0, 1.0)], log_space=True)

    def test_prob_out_of_range_rejected(self):
        with pytest.raises(CalibrationError):
            QuantileDistribution([(-0.1, 0.0), (1.0, 1.0)])


class TestLogNormal:
    def test_median_and_cov(self, rng):
        dist = LogNormal(median=10.0, cov=1.0)
        samples = dist.sample(rng, 100000)
        assert np.median(samples) == pytest.approx(10.0, rel=0.05)
        assert samples.std() / samples.mean() == pytest.approx(1.0, rel=0.1)

    def test_mean_formula(self):
        dist = LogNormal(median=10.0, cov=0.5)
        expected = 10.0 * np.exp(dist.sigma**2 / 2)
        assert dist.mean == pytest.approx(expected)

    def test_invalid_params(self):
        with pytest.raises(CalibrationError):
            LogNormal(median=0.0, cov=1.0)
        with pytest.raises(CalibrationError):
            LogNormal(median=1.0, cov=-1.0)


class TestSupportingDistributions:
    def test_constant(self, rng):
        dist = Constant(5.0)
        assert dist.sample(rng) == 5.0
        assert (dist.sample(rng, 3) == 5.0).all()

    def test_uniform_bounds(self, rng):
        dist = Uniform(2.0, 4.0)
        samples = dist.sample(rng, 1000)
        assert samples.min() >= 2.0 and samples.max() < 4.0

    def test_uniform_reversed_rejected(self):
        with pytest.raises(CalibrationError):
            Uniform(4.0, 2.0)

    def test_bounded_pareto_support(self, rng):
        dist = BoundedPareto(0.5, 1.0, 100.0)
        samples = dist.sample(rng, 5000)
        assert samples.min() >= 1.0 and samples.max() <= 100.0

    def test_bounded_pareto_skew(self, rng):
        samples = BoundedPareto(0.5, 1.0, 1000.0).sample(rng, 20000)
        assert np.mean(samples) > 3 * np.median(samples)

    def test_bounded_pareto_invalid(self):
        with pytest.raises(CalibrationError):
            BoundedPareto(-1.0, 1.0, 10.0)
        with pytest.raises(CalibrationError):
            BoundedPareto(1.0, 10.0, 1.0)

    def test_clipped(self):
        assert clipped(150.0, 0.0, 100.0) == 100.0
        assert (clipped(np.asarray([-5.0, 50.0]), 0.0, 100.0) == [0.0, 50.0]).all()


class TestMixture:
    def test_weights_normalised(self):
        mix = Mixture([Constant(0.0), Constant(1.0)], [1.0, 3.0])
        assert mix.weights.tolist() == [0.25, 0.75]

    def test_sample_respects_weights(self, rng):
        mix = Mixture([Constant(0.0), Constant(1.0)], [0.2, 0.8])
        samples = mix.sample(rng, 20000)
        assert samples.mean() == pytest.approx(0.8, abs=0.02)

    def test_scalar_sample(self, rng):
        mix = Mixture([Constant(2.0)], [1.0])
        assert mix.sample(rng) == 2.0

    def test_length_mismatch(self):
        with pytest.raises(CalibrationError):
            Mixture([Constant(1.0)], [0.5, 0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(CalibrationError):
            Mixture([Constant(1.0), Constant(2.0)], [-1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            Mixture([], [])


class TestCategorical:
    def test_sample_labels(self, rng):
        cat = Categorical(["x", "y"], [0.5, 0.5])
        assert cat.sample(rng) in ("x", "y")

    def test_sample_batch(self, rng):
        cat = Categorical([1, 2, 3], [1.0, 1.0, 1.0])
        out = cat.sample(rng, 10)
        assert len(out) == 10
        assert set(out) <= {1, 2, 3}

    def test_degenerate_weight(self, rng):
        cat = Categorical(["only"], [1.0])
        assert cat.sample(rng) == "only"

    def test_weights_sampled_proportionally(self, rng):
        cat = Categorical([0, 1], [0.1, 0.9])
        draws = cat.sample(rng, 20000)
        assert np.mean(draws) == pytest.approx(0.9, abs=0.02)


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
@st.composite
def anchor_lists(draw):
    n = draw(st.integers(2, 6))
    probs = sorted(
        draw(
            st.lists(
                st.floats(0.01, 0.99), min_size=n, max_size=n, unique=True
            )
        )
    )
    values = sorted(
        draw(st.lists(st.floats(0.0, 1000.0), min_size=n, max_size=n))
    )
    return list(zip(probs, values))


@given(anchor_lists())
@settings(max_examples=80, deadline=None)
def test_quantile_is_monotone(anchors):
    dist = QuantileDistribution(anchors)
    ps = np.linspace(0, 1, 23)
    qs = dist.quantile(ps)
    assert (np.diff(qs) >= -1e-9).all()


@given(anchor_lists(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_samples_stay_inside_support(anchors, seed):
    dist = QuantileDistribution(anchors)
    lo, hi = dist.support
    samples = dist.sample(np.random.default_rng(seed), 100)
    assert (samples >= lo - 1e-9).all()
    assert (samples <= hi + 1e-9).all()


@given(
    st.floats(0.1, 1e4),
    st.floats(0.05, 5.0),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_lognormal_positive(median, cov, seed):
    samples = LogNormal(median, cov).sample(np.random.default_rng(seed), 50)
    assert (samples > 0).all()
