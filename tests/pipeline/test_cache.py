"""Tests for the on-disk pipeline artifact cache."""

import subprocess
import sys

import numpy as np
import pytest

from repro.dataset import generate_dataset
from repro.monitor.collector import MonitoringConfig
from repro.pipeline import DatasetCache, Session, dataset_key
from repro.workload.generator import WorkloadConfig

CONFIG = WorkloadConfig(scale=0.01, seed=101)


@pytest.fixture(scope="module")
def cached_pair(tmp_path_factory):
    """(fresh dataset, cache-loaded dataset) for one tiny config."""
    cache_dir = tmp_path_factory.mktemp("cache")
    builder = Session(CONFIG, cache_dir=cache_dir)
    fresh = builder.dataset()
    loader = Session(CONFIG, cache_dir=cache_dir)
    return fresh, loader.dataset(), loader


class TestKey:
    def test_stable_within_process(self):
        assert dataset_key(CONFIG, None) == dataset_key(CONFIG, None)

    def test_none_matches_defaults(self):
        assert dataset_key(None, None) == dataset_key(WorkloadConfig(), MonitoringConfig())

    def test_sensitive_to_workload_config(self):
        assert dataset_key(CONFIG, None) != dataset_key(
            WorkloadConfig(scale=0.01, seed=102), None
        )

    def test_sensitive_to_monitoring_config(self):
        assert dataset_key(CONFIG, None) != dataset_key(
            CONFIG, MonitoringConfig(timeseries_fraction=0.5)
        )

    def test_stable_across_processes(self):
        code = (
            "from repro.pipeline import dataset_key\n"
            "from repro.workload.generator import WorkloadConfig\n"
            "print(dataset_key(WorkloadConfig(scale=0.01, seed=101), None))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert out.stdout.strip() == dataset_key(CONFIG, None)


class TestRoundTrip:
    def test_hit_skips_generation(self, cached_pair):
        _, _, loader = cached_pair
        assert loader.instrumentation.count("cache_hit") == 1
        assert loader.instrumentation.count("build") == 0
        assert not loader.executed("workload")
        assert not loader.executed("schedule")

    def test_tables_equal_fresh_build(self, cached_pair):
        fresh, loaded, _ = cached_pair
        for attr in ("jobs", "gpu_jobs", "per_gpu"):
            a, b = getattr(fresh, attr), getattr(loaded, attr)
            assert a.column_names == b.column_names
            assert a.num_rows == b.num_rows
            for name in a.column_names:
                assert list(a[name]) == list(b[name]), (attr, name)

    def test_timeseries_within_codec_quantisation(self, cached_pair):
        fresh, loaded, _ = cached_pair
        assert fresh.timeseries.job_ids() == loaded.timeseries.job_ids()
        for series in fresh.timeseries:
            twin = loaded.timeseries.get(series.job_id, series.gpu_index)
            # sampling steps are stored as integer microseconds, so the
            # time axis may drift by up to 0.5 us per step
            np.testing.assert_allclose(
                twin.times_s, series.times_s, atol=1e-6 * series.num_samples
            )
            for name, values in series.metrics.items():
                np.testing.assert_allclose(twin.metrics[name], values, atol=0.26)

    def test_records_and_config_survive(self, cached_pair):
        fresh, loaded, _ = cached_pair
        assert len(loaded.records) == len(fresh.records)
        assert loaded.records[0].request.job_id == fresh.records[0].request.job_id
        assert loaded.config == fresh.config
        assert loaded.spec.num_nodes == fresh.spec.num_nodes

    def test_matches_generate_dataset(self, cached_pair):
        fresh, _, _ = cached_pair
        reference = generate_dataset(CONFIG)
        assert list(fresh.gpu_jobs["sm_mean"]) == list(reference.gpu_jobs["sm_mean"])


class TestCorruption:
    @pytest.mark.parametrize(
        "victim", ["timeseries.npz", "jobs.csv", "manifest.json", "records.pkl"]
    )
    def test_corrupt_file_falls_back_to_regeneration(self, tmp_path, victim):
        cache_dir = tmp_path / "cache"
        first = Session(CONFIG, cache_dir=cache_dir)
        fresh = first.dataset()
        (DatasetCache(cache_dir).entry_dir(first.key) / victim).write_bytes(b"not the artifact")

        second = Session(CONFIG, cache_dir=cache_dir)
        rebuilt = second.dataset()
        assert second.instrumentation.count("cache_hit") == 0
        assert second.instrumentation.count("build") == 1
        assert list(rebuilt.gpu_jobs["sm_mean"]) == list(fresh.gpu_jobs["sm_mean"])

    def test_corrupt_entry_is_evicted_and_rewritten(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = Session(CONFIG, cache_dir=cache_dir)
        first.dataset()
        cache = DatasetCache(cache_dir)
        (cache.entry_dir(first.key) / "manifest.json").write_text("{broken")

        second = Session(CONFIG, cache_dir=cache_dir)
        second.dataset()
        third = Session(CONFIG, cache_dir=cache_dir)
        third.dataset()
        assert third.instrumentation.count("cache_hit") == 1

    def test_missing_entry_loads_none(self, tmp_path):
        assert DatasetCache(tmp_path).load("no-such-key") is None
