"""Tests for the seed-robustness harness."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.robustness import seed_sweep, summarize


@pytest.fixture(scope="module")
def sweep():
    # two small seeds keep this test affordable (~10 s)
    return seed_sweep(seeds=(1, 2), scale=0.03)


class TestSeedSweep:
    def test_one_row_per_check(self, sweep):
        keys = {(r["figure"], r["statistic"]) for r in sweep.iter_rows()}
        assert len(keys) == sweep.num_rows

    def test_pass_rates_valid(self, sweep):
        rates = np.asarray(sweep["pass_rate"], dtype=float)
        assert ((rates >= 0.0) & (rates <= 1.0)).all()

    def test_sorted_fragile_first(self, sweep):
        rates = np.asarray(sweep["pass_rate"], dtype=float)
        assert (np.diff(rates) >= -1e-9).all()

    def test_majority_robust(self, sweep):
        summary = summarize(sweep)
        assert summary.robust_checks > summary.failing_checks
        assert summary.mean_pass_fraction > 0.6

    def test_too_few_seeds_rejected(self):
        with pytest.raises(AnalysisError):
            seed_sweep(seeds=(1,))

    def test_parallel_sweep_matches_serial(self, sweep, tmp_path):
        parallel = seed_sweep(
            seeds=(1, 2), scale=0.03, workers=2, cache_dir=tmp_path / "cache"
        )
        assert parallel.num_rows == sweep.num_rows
        serial_rows = {(r["figure"], r["statistic"]): r for r in sweep.iter_rows()}
        for row in parallel.iter_rows():
            twin = serial_rows[(row["figure"], row["statistic"])]
            assert row["pass_rate"] == twin["pass_rate"]
            assert row["mean_measured"] == pytest.approx(twin["mean_measured"])
