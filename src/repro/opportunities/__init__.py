"""Opportunity models from the paper's takeaways (Sec. III, VI, VIII).

The paper stops at identifying opportunities; these modules quantify
them on the reproduced dataset:

* :mod:`repro.opportunities.colocation` — share GPUs between jobs with
  complementary idle phases and non-contending resources.
* :mod:`repro.opportunities.tiering` — a two-tier GPU fleet with slower
  cheaper devices for exploratory/development/IDE jobs.
* :mod:`repro.opportunities.powercap` — power-cap the fleet and spend
  the head-room on extra GPUs at iso-power.
* :mod:`repro.opportunities.checkpoint` — checkpoint/restart support
  for the state lost by development/IDE timeouts.
* :mod:`repro.opportunities.mig` — static MIG partitioning of the
  fleet (Sec. VIII's Multi-Instance GPU discussion).
"""

from repro.opportunities.checkpoint import CheckpointModel, checkpoint_study
from repro.opportunities.colocation import ColocationSimulator, colocation_study
from repro.opportunities.mig import best_partition, mig_study, partition_sweep
from repro.opportunities.powercap import powercap_study
from repro.opportunities.tiering import TierSpec, tiering_study

__all__ = [
    "CheckpointModel",
    "ColocationSimulator",
    "TierSpec",
    "best_partition",
    "checkpoint_study",
    "colocation_study",
    "mig_study",
    "partition_sweep",
    "powercap_study",
    "tiering_study",
]
