"""Tests for the per-figure reproduction harness.

Each figure runs against the shared medium dataset; assertions check
the *shape* claims of the paper (orderings, bounds), not exact values.
"""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.figures.base import Comparison
from repro.figures.registry import all_figures, get_figure, run_figure


@pytest.fixture(scope="module")
def results(medium_dataset):
    return {fid: run_figure(fid, medium_dataset) for fid in all_figures()}


class TestRegistry:
    def test_all_paper_figures_registered(self):
        ids = all_figures()
        for n in range(3, 18):
            assert f"fig{n:02d}" in ids
        assert "table1" in ids
        assert "queue_waits" in ids
        assert "pareto" in ids

    def test_unknown_figure_rejected(self):
        with pytest.raises(AnalysisError, match="unknown figure"):
            get_figure("fig99")

    def test_every_figure_produces_comparisons(self, results):
        for fid, result in results.items():
            assert result.comparisons, fid
            assert result.figure_id == fid

    def test_comparison_table_roundtrip(self, results):
        table = results["fig04"].comparison_table()
        assert table.num_rows == len(results["fig04"].comparisons)
        assert set(table.column_names) == {"figure", "name", "paper", "measured", "unit"}

    def test_to_text_mentions_title(self, results):
        assert "power" in results["fig09"].to_text().lower()

    def test_get_lookup(self, results):
        comparison = results["fig04"].get("SM util median")
        assert comparison.paper == 16.0
        with pytest.raises(KeyError):
            results["fig04"].get("nope")


class TestComparisonType:
    def test_ratio(self):
        assert Comparison("x", 10.0, 5.0).ratio == 0.5

    def test_ratio_zero_paper_nan(self):
        assert np.isnan(Comparison("x", 0.0, 5.0).ratio)

    def test_ratio_nonfinite_measured_nan(self):
        assert np.isnan(Comparison("x", 10.0, float("inf")).ratio)
        assert np.isnan(Comparison("x", 10.0, float("-inf")).ratio)
        assert np.isnan(Comparison("x", 10.0, float("nan")).ratio)

    def test_ratio_nonfinite_paper_nan(self):
        assert np.isnan(Comparison("x", float("inf"), 5.0).ratio)
        assert np.isnan(Comparison("x", float("nan"), 5.0).ratio)

    def test_formatted(self):
        text = Comparison("median", 30.0, 28.4, " min").formatted()
        assert "paper 30 min" in text


class TestFig03Shape:
    def test_gpu_jobs_run_longer_than_cpu(self, results):
        r = results["fig03"]
        assert r.get("GPU runtime median").measured > r.get("CPU runtime median").measured

    def test_gpu_jobs_wait_less(self, results):
        r = results["fig03"]
        assert (
            r.get("GPU jobs waiting <2% of service").measured
            > r.get("CPU jobs waiting <2% of service").measured
        )

    def test_runtime_medians_in_band(self, results):
        measured = results["fig03"].get("GPU runtime median").measured
        assert 10.0 <= measured <= 80.0  # paper: 30 min


class TestFig04Shape:
    def test_resource_ordering(self, results):
        r = results["fig04"]
        sm = r.get("SM util median").measured
        mem = r.get("memory util median").measured
        assert sm > mem

    def test_low_utilization_headline(self, results):
        r = results["fig04"]
        for name in ("jobs with SM util >50%", "jobs with memory util >50%"):
            assert r.get(name).measured < 0.5


class TestFig06Fig07Shape:
    def test_phases_bimodal(self, results):
        r = results["fig06"]
        assert r.get("active-time share p25").measured < 0.5
        assert r.get("active-time share p75").measured > 0.8

    def test_interval_covs_high(self, results):
        r = results["fig06"]
        assert r.get("idle interval CoV median").measured > 0.5
        assert r.get("active interval CoV median").measured > 0.5

    def test_sm_dominates_bottlenecks(self, results):
        r = results["fig07"]
        sm = r.get("sm bottleneck fraction").measured
        assert sm > r.get("mem_bw bottleneck fraction").measured
        assert 0.1 <= sm <= 0.35  # paper: 0.22


class TestFig09Shape:
    def test_power_headroom(self, results):
        r = results["fig09"]
        assert r.get("average power median").measured < 150.0
        assert r.get("maximum power median").measured < 300.0

    def test_cap_satisfies_paper_bounds(self, results):
        r = results["fig09"]
        assert r.get("unimpacted at 150 W cap").measured > 0.5
        assert r.get("avg-impacted at 150 W cap").measured < 0.10


class TestFig13Fig14Shape:
    def test_single_gpu_dominates(self, results):
        assert results["fig13"].get("single-GPU job fraction").measured > 0.7

    def test_multi_gpu_hours_disproportionate(self, results):
        r = results["fig13"]
        share = r.get("multi-GPU share of GPU hours").measured
        jobs = 1.0 - r.get("single-GPU job fraction").measured
        assert share > jobs

    def test_idle_gpu_pathology(self, results):
        measured = results["fig14"].get("multi-GPU jobs with idle GPUs (>=half)").measured
        assert 0.15 <= measured <= 0.6


class TestFig15To17Shape:
    def test_mature_majority_of_jobs_minority_of_hours(self, results):
        r = results["fig15"]
        assert r.get("mature job share").measured > 0.45
        assert (
            r.get("mature GPU-hour share").measured
            < r.get("mature job share").measured
        )

    def test_ide_hours_disproportionate(self, results):
        r = results["fig15"]
        assert (
            r.get("ide GPU-hour share").measured
            > 2 * r.get("ide job share").measured
        )

    def test_class_sm_ordering(self, results):
        r = results["fig16"]
        assert r.get("mature/expl >> dev/IDE ordering holds").measured == 1.0
        assert r.get("IDE SM p75 (paper: 0)").measured <= 1.0

    def test_user_composition_varies(self, results):
        assert results["fig17"].get("users with mature job share <40%").measured > 0.1


class TestQueueWaitsShape:
    def test_multi_gpu_not_slower(self, results):
        r = results["queue_waits"]
        single = r.get("median wait, 1 GPU(s)").measured
        multi = r.get("median wait, 2 GPU(s)").measured
        assert multi <= single
