"""Vectorized-vs-reference equivalence on randomized tables.

The grouped operations (``aggregate``, ``sizes``, ``value_counts``,
``pivot``, ``join``) run on factorized codes and ``reduceat``-style
segment kernels; :mod:`repro.frame.reference` keeps the retired
row-at-a-time implementations.  These hypothesis tests assert the two
paths agree **bit-for-bit** (``to_dict`` equality, no tolerance) on
tables mixing numeric, string, None-bearing, and mixed-type key
columns, with empty groups, non-unique ties, and both join types.

NaN keys are excluded: each NaN forms its own group on both paths, but
group *identity* then depends on object identity, which hypothesis
cannot constrain meaningfully.  NaN-key behavior is pinned by the unit
tests instead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.frame import Table
from repro.frame.reference import (
    naive_aggregate,
    naive_join,
    naive_pivot,
    naive_sizes,
    naive_value_counts,
)

REDUCERS = ("mean", "sum", "min", "max", "median", "std", "count", "first", "last")

key_ints = st.integers(-3, 3)
key_names = st.text(alphabet="abc", min_size=1, max_size=2)
values = st.floats(allow_nan=False, allow_infinity=False, width=32)


@st.composite
def keyed_tables(draw, min_rows=1, max_rows=40, num_keys=1):
    """A table with ``num_keys`` key columns of varied dtype plus two
    numeric value columns ``v0``/``v1``."""
    n = draw(st.integers(min_rows, max_rows))
    data = {}
    for i in range(num_keys):
        kind = draw(st.sampled_from(["int", "str", "str_none", "mixed", "float"]))
        if kind == "int":
            column = draw(st.lists(key_ints, min_size=n, max_size=n))
        elif kind == "str":
            column = draw(st.lists(key_names, min_size=n, max_size=n))
        elif kind == "str_none":
            column = draw(
                st.lists(st.one_of(key_names, st.none()), min_size=n, max_size=n)
            )
        elif kind == "mixed":
            column = draw(
                st.lists(
                    st.one_of(key_names, key_ints, st.none()), min_size=n, max_size=n
                )
            )
        else:
            column = draw(st.lists(st.sampled_from([0.0, 0.5, -1.5]), min_size=n, max_size=n))
        data[f"k{i}"] = column
    data["v0"] = draw(st.lists(values, min_size=n, max_size=n))
    data["v1"] = draw(st.lists(values, min_size=n, max_size=n))
    return Table(data)


@given(keyed_tables(), st.lists(st.sampled_from(REDUCERS), min_size=1, max_size=4, unique=True))
@settings(max_examples=80, deadline=None)
def test_aggregate_matches_reference(t, reducers):
    spec = {"v0": list(reducers), "v1": "mean"}
    fast = t.group_by("k0").aggregate(spec)
    assert fast.to_dict() == naive_aggregate(t, ("k0",), spec).to_dict()


@given(keyed_tables(num_keys=2))
@settings(max_examples=60, deadline=None)
def test_multi_key_aggregate_matches_reference(t):
    spec = {"v0": ["sum", "count"], "v1": ["min", "max"]}
    fast = t.group_by("k0", "k1").aggregate(spec)
    assert fast.to_dict() == naive_aggregate(t, ("k0", "k1"), spec).to_dict()


@given(keyed_tables(num_keys=2))
@settings(max_examples=60, deadline=None)
def test_sizes_matches_reference(t):
    fast = t.group_by("k0", "k1").sizes()
    assert fast.to_dict() == naive_sizes(t, ("k0", "k1")).to_dict()


@given(keyed_tables())
@settings(max_examples=80, deadline=None)
def test_value_counts_matches_reference(t):
    assert t.value_counts("k0").to_dict() == naive_value_counts(t, "k0").to_dict()


@given(keyed_tables(num_keys=2), st.sampled_from(REDUCERS))
@settings(max_examples=60, deadline=None)
def test_pivot_matches_reference(t, reducer):
    fast = t.pivot("k0", "k1", "v0", reducer)
    assert fast.to_dict() == naive_pivot(t, "k0", "k1", "v0", reducer).to_dict()


@st.composite
def join_pairs(draw):
    """A left table and a right table with unique keys, overlapping the
    left keys only partially (so inner joins drop rows and left joins
    backfill None)."""
    left = draw(keyed_tables(max_rows=25))
    left_keys = list(dict.fromkeys(left["k0"].tolist()))
    kept = [k for i, k in enumerate(left_keys) if draw(st.booleans()) or i == 0]
    extra = draw(st.lists(st.integers(100, 110), max_size=3, unique=True))
    keys = kept + [k for k in extra if k not in set(left_keys)]
    right = Table(
        {
            "k0": keys,
            "r0": [float(i) for i in range(len(keys))],
        }
    )
    return left, right


@given(join_pairs(), st.sampled_from(["inner", "left"]))
@settings(max_examples=80, deadline=None)
def test_join_matches_reference(pair, how):
    left, right = pair
    fast = left.join(right, on="k0", how=how)
    assert fast.to_dict() == naive_join(left, right, on="k0", how=how).to_dict()


def test_join_duplicate_right_key_raises_like_reference():
    left = Table({"k0": [1, 2], "v": [0.5, 1.5]})
    right = Table({"k0": [1, 1], "r": [1.0, 2.0]})
    with pytest.raises(FrameError, match="not unique"):
        left.join(right, on="k0")
    with pytest.raises(FrameError, match="not unique"):
        naive_join(left, right, on="k0")


def test_nan_keys_each_form_their_own_group():
    t = Table({"k": np.array([np.nan, 1.0, np.nan]), "v": [1.0, 2.0, 3.0]})
    sizes = t.group_by("k").sizes()
    assert list(sizes["count"]) == [1, 1, 1]


def test_aggregate_empty_table_matches_reference():
    t = Table({"k": np.empty(0, dtype=object), "v": np.empty(0)})
    fast = t.group_by("k").aggregate({"v": "mean"})
    assert fast.to_dict() == naive_aggregate(t, ("k",), {"v": "mean"}).to_dict()
