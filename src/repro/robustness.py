"""Seed-robustness of the reproduction.

A calibrated synthetic dataset is one draw from a stochastic
generator; a statistic matching the paper on one seed proves little.
This harness repeats the full pipeline across seeds and aggregates the
fidelity scorecard, separating *robust* checks (pass on almost every
seed) from *fragile* ones (seed-dependent) and genuine misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset import generate_dataset
from repro.errors import AnalysisError
from repro.frame import Table
from repro.validation import validate_dataset
from repro.workload.generator import WorkloadConfig


@dataclass(frozen=True)
class RobustnessSummary:
    """Aggregate over a seed sweep."""

    num_seeds: int
    mean_pass_fraction: float
    robust_checks: int      # pass on >= 80% of seeds
    fragile_checks: int     # pass on 20-80% of seeds
    failing_checks: int     # pass on < 20% of seeds


def seed_sweep(seeds, scale: float = 0.05, days: float = 125.0) -> Table:
    """Run validation for every seed; one row per (check, seed-rate).

    Returns a table with ``figure``, ``statistic``, ``pass_rate``,
    ``mean_measured``, ``paper``.
    """
    seeds = list(seeds)
    if len(seeds) < 2:
        raise AnalysisError("need at least two seeds for a sweep")
    outcomes: dict[tuple[str, str], list] = {}
    papers: dict[tuple[str, str], float] = {}
    for seed in seeds:
        dataset = generate_dataset(WorkloadConfig(scale=scale, seed=seed, days=days))
        for result in validate_dataset(dataset):
            key = (result.check.figure_id, result.check.name)
            outcomes.setdefault(key, []).append((result.passed, result.measured))
            papers[key] = result.paper
    rows = []
    for (figure, statistic), entries in outcomes.items():
        passes = [p for p, _ in entries]
        measured = [m for _, m in entries]
        rows.append(
            {
                "figure": figure,
                "statistic": statistic,
                "pass_rate": float(np.mean(passes)),
                "mean_measured": float(np.mean(measured)),
                "paper": papers[(figure, statistic)],
                "num_seeds": len(entries),
            }
        )
    return Table.from_rows(rows).sort_by("pass_rate")


def summarize(sweep: Table) -> RobustnessSummary:
    """Classify checks by how often they pass across seeds."""
    if sweep.num_rows == 0:
        raise AnalysisError("empty sweep")
    rates = np.asarray(sweep["pass_rate"], dtype=float)
    return RobustnessSummary(
        num_seeds=int(sweep.row(0)["num_seeds"]),
        mean_pass_fraction=float(rates.mean()),
        robust_checks=int((rates >= 0.8).sum()),
        fragile_checks=int(((rates >= 0.2) & (rates < 0.8)).sum()),
        failing_checks=int((rates < 0.2).sum()),
    )
