"""Seed-robustness of the reproduction.

A calibrated synthetic dataset is one draw from a stochastic
generator; a statistic matching the paper on one seed proves little.
This harness repeats the full pipeline across seeds and aggregates the
fidelity scorecard, separating *robust* checks (pass on almost every
seed) from *fragile* ones (seed-dependent) and genuine misses.

Seeds are independent, so the sweep fans out across a process pool
(``workers``); with a ``cache_dir`` every per-seed dataset is also
persisted through the :mod:`repro.pipeline` artifact cache, making
repeated sweeps (e.g. after an analysis-layer change) near-instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table
from repro.pipeline.parallel import parallel_map


@dataclass(frozen=True)
class RobustnessSummary:
    """Aggregate over a seed sweep."""

    num_seeds: int
    mean_pass_fraction: float
    robust_checks: int      # pass on >= 80% of seeds
    fragile_checks: int     # pass on 20-80% of seeds
    failing_checks: int     # pass on < 20% of seeds


def _sweep_one(task: tuple[int, float, float, str | None]) -> list[tuple]:
    """Validate one seed; returns plain tuples (picklable across the pool)."""
    seed, scale, days, cache_dir = task
    from repro.pipeline.session import Session
    from repro.validation import validate_dataset
    from repro.workload.generator import WorkloadConfig

    session = Session(
        WorkloadConfig(scale=scale, seed=seed, days=days), cache_dir=cache_dir
    )
    return [
        (r.check.figure_id, r.check.name, bool(r.passed), float(r.measured), float(r.paper))
        for r in validate_dataset(session.dataset())
    ]


def seed_sweep(
    seeds,
    scale: float = 0.05,
    days: float = 125.0,
    *,
    workers: int | None = 1,
    cache_dir: str | Path | None = None,
) -> Table:
    """Run validation for every seed; one row per (check, seed-rate).

    Returns a table with ``figure``, ``statistic``, ``pass_rate``,
    ``mean_measured``, ``paper``.  ``workers > 1`` runs the seeds
    across a process pool; ``cache_dir`` shares the pipeline artifact
    cache between them (and with any other session using it).
    """
    seeds = list(seeds)
    if len(seeds) < 2:
        raise AnalysisError("need at least two seeds for a sweep")
    cache = str(cache_dir) if cache_dir is not None else None
    per_seed = parallel_map(
        _sweep_one, [(seed, scale, days, cache) for seed in seeds], workers
    )
    outcomes: dict[tuple[str, str], list] = {}
    papers: dict[tuple[str, str], float] = {}
    for results in per_seed:
        for figure, statistic, passed, measured, paper in results:
            key = (figure, statistic)
            outcomes.setdefault(key, []).append((passed, measured))
            papers[key] = paper
    rows = []
    for (figure, statistic), entries in outcomes.items():
        passes = [p for p, _ in entries]
        measured = [m for _, m in entries]
        rows.append(
            {
                "figure": figure,
                "statistic": statistic,
                "pass_rate": float(np.mean(passes)),
                "mean_measured": float(np.mean(measured)),
                "paper": papers[(figure, statistic)],
                "num_seeds": len(entries),
            }
        )
    return Table.from_rows(rows).sort_by("pass_rate")


def summarize(sweep: Table) -> RobustnessSummary:
    """Classify checks by how often they pass across seeds."""
    if sweep.num_rows == 0:
        raise AnalysisError("empty sweep")
    rates = np.asarray(sweep["pass_rate"], dtype=float)
    return RobustnessSummary(
        num_seeds=int(sweep.row(0)["num_seeds"]),
        mean_pass_fraction=float(rates.mean()),
        robust_checks=int((rates >= 0.8).sum()),
        fragile_checks=int(((rates >= 0.2) & (rates < 0.8)).sum()),
        failing_checks=int((rates < 0.2).sum()),
    )
