"""Sanity checks on the calibration constants themselves.

These guard against knob edits that would silently break the
generator: every anchor set must be a valid quantile distribution,
every probability vector must normalise, and the paper targets must
stay self-consistent.
"""

import numpy as np
import pytest

from repro.distributions import QuantileDistribution
from repro.workload.calibration import GeneratorKnobs, PAPER_TARGETS, PaperTargets


@pytest.fixture(scope="module")
def knobs():
    return GeneratorKnobs()


class TestAnchorsValid:
    def test_sm_anchors_build(self, knobs):
        for cls, anchors in knobs.sm_anchors.items():
            dist = QuantileDistribution(anchors)
            assert dist.support[1] <= 100.0, cls

    def test_size_anchors_build(self, knobs):
        for anchors in knobs.size_anchors.values():
            QuantileDistribution(anchors)

    def test_active_fraction_anchors_bounded(self, knobs):
        for cls, anchors in knobs.active_fraction_anchors.items():
            dist = QuantileDistribution(anchors)
            lo, hi = dist.support
            assert 0.0 <= lo <= hi <= 1.0, cls

    def test_mem_ratio_anchors_build(self, knobs):
        dist = QuantileDistribution(knobs.mem_ratio_anchors)
        assert dist.support[1] < 1.0

    def test_cpu_runtime_anchors_log_space(self, knobs):
        dist = QuantileDistribution(knobs.cpu_runtime_anchors, log_space=True)
        assert dist.quantile(0.5) == pytest.approx(480.0)

    def test_class_ordering_mature_above_dev(self, knobs):
        mature = QuantileDistribution(knobs.sm_anchors["mature"]).quantile(0.5)
        dev = QuantileDistribution(knobs.sm_anchors["development"]).quantile(0.5)
        ide = QuantileDistribution(knobs.sm_anchors["ide"]).quantile(0.5)
        assert mature > dev >= ide


class TestProbabilityVectors:
    def test_class_given_interface_normalised(self, knobs):
        for interface, probs in knobs.class_given_interface.items():
            assert sum(probs.values()) == pytest.approx(1.0, abs=0.01), interface

    def test_gpu_count_distributions_normalised(self, knobs):
        for category, counts in knobs.gpu_count_by_category.items():
            assert sum(counts.values()) == pytest.approx(1.0, abs=0.01), category
            assert all(k >= 1 for k in counts), category

    def test_user_category_probs_normalised(self, knobs):
        assert sum(knobs.user_gpu_category_probs) == pytest.approx(1.0)
        assert len(knobs.user_gpu_categories) == len(knobs.user_gpu_category_probs)

    def test_ide_limit_probs_normalised(self, knobs):
        assert sum(knobs.ide_limit_probs) == pytest.approx(1.0)
        assert len(knobs.ide_time_limits_s) == len(knobs.ide_limit_probs)

    def test_gpu_job_cores_probs_normalised(self, knobs):
        assert sum(knobs.gpu_job_cores_probs) == pytest.approx(1.0)


class TestPaperTargets:
    def test_class_shares_sum_to_one(self):
        assert sum(PAPER_TARGETS.class_shares.values()) == pytest.approx(1.0, abs=0.01)

    def test_class_hour_shares_sum_to_one(self):
        assert sum(PAPER_TARGETS.class_gpu_hour_shares.values()) == pytest.approx(1.0, abs=0.01)

    def test_interface_shares_sum_to_one(self):
        assert sum(PAPER_TARGETS.interface_shares.values()) == pytest.approx(1.0, abs=0.01)

    def test_quantiles_ordered(self):
        t = PAPER_TARGETS
        assert t.gpu_runtime_p25_min < t.gpu_runtime_median_min < t.gpu_runtime_p75_min
        assert t.user_avg_runtime_p25_min < t.user_avg_runtime_median_min < t.user_avg_runtime_p75_min
        assert t.active_fraction_p25 < t.active_fraction_median < t.active_fraction_p75

    def test_dataset_counts_consistent(self):
        t = PAPER_TARGETS
        assert t.gpu_jobs_analyzed < t.total_jobs
        assert t.timeseries_jobs < t.gpu_jobs_analyzed

    def test_targets_frozen(self):
        with pytest.raises(Exception):
            PAPER_TARGETS.num_users = 5

    def test_singleton_matches_fresh_instance(self):
        assert PaperTargets() == PAPER_TARGETS


class TestDerivedConsistency:
    def test_short_filter_yield_matches_paper(self, knobs):
        """51,500 raw GPU jobs minus the short fraction ~= 47,120."""
        survivors = 51500 * (1.0 - knobs.short_gpu_job_fraction)
        assert survivors == pytest.approx(PAPER_TARGETS.gpu_jobs_analyzed, rel=0.01)

    def test_power_model_median_job(self, knobs):
        """The linear power model lands near 45 W for the median job."""
        power = (
            knobs.power_idle_w
            + knobs.power_per_sm_pct * PAPER_TARGETS.sm_util_median
            + knobs.power_per_mem_pct * PAPER_TARGETS.mem_bw_util_median
            + knobs.power_per_size_pct * PAPER_TARGETS.mem_size_util_median
        )
        assert power == pytest.approx(PAPER_TARGETS.avg_power_median_w, rel=0.2)
