"""Live island telemetry: heartbeats, the progress view, and the
background resource sampler.

Sharded builds run for minutes inside worker processes; until now they
were opaque while running — every metric and span arrived only at the
end.  This module is the live side channel:

* :class:`Heartbeat` — one worker's periodic status (epoch, simulation
  clock, queue depth, dispatched jobs, peak RSS, spill bytes), a plain
  picklable dict on the wire;
* an **ambient sink** (:func:`use_sink` / :func:`emit`) mirroring
  :mod:`repro.obs.runtime`: island runners call :func:`emit`
  unconditionally — one module read and a branch when nobody is
  watching, an aggregator update when a ``--progress`` view is;
* :class:`ProgressAggregator` — folds heartbeats into a per-island
  table and renders it for terminals (the ``--progress`` flag and the
  ``repro obs top`` live view);
* :class:`ResourceSampler` — a daemon thread sampling the parent
  process (RSS, spill-directory bytes, streamed-row throughput) into
  the existing :class:`~repro.obs.metrics.MetricsRegistry` while a
  build runs.

The heartbeat path is observation-only: it rides a dedicated pipe per
island worker (never the interchange payload), consumes no RNG, and
the bit-identity gates in ``benchmarks/bench_scale.py`` run with it
enabled.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from contextlib import contextmanager


@dataclass
class Heartbeat:
    """One island worker's periodic status report."""

    island: int
    epoch: int
    #: Simulation clock at the epoch boundary, in seconds.
    sim_time_s: float
    queue_depth: int
    running: int
    #: Scheduler events processed so far.
    events: int
    dispatched: int
    peak_rss_bytes: float
    spill_bytes: float
    #: Wall-clock seconds when the worker sent the heartbeat.
    wall_s: float = field(default_factory=time.time)

    def to_payload(self) -> dict[str, Any]:
        return {
            "island": self.island,
            "epoch": self.epoch,
            "sim_time_s": self.sim_time_s,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "events": self.events,
            "dispatched": self.dispatched,
            "peak_rss_bytes": self.peak_rss_bytes,
            "spill_bytes": self.spill_bytes,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Heartbeat":
        return cls(**dict(payload))


# ----------------------------------------------------------------------
# Ambient sink
# ----------------------------------------------------------------------

#: The currently-watching sink; ``None`` means nobody is watching and
#: :func:`emit` is a read + branch.
_sink: "ProgressAggregator | None" = None


def get_sink() -> "ProgressAggregator | None":
    """The active heartbeat sink, or ``None`` when nobody watches."""
    return _sink


def emit(heartbeat: "Heartbeat | Mapping[str, Any]") -> None:
    """Deliver one heartbeat to the active sink, if any.

    The single call sites (island runners, the parent drain loop)
    make; with no sink installed this is one module read and a branch.
    """
    sink = _sink
    if sink is not None:
        sink.update(heartbeat)


@contextmanager
def use_sink(sink: "ProgressAggregator | None") -> Iterator[None]:
    """Scoped sink installation: restores the previous sink on exit."""
    global _sink
    prev = _sink
    _sink = sink
    try:
        yield
    finally:
        _sink = prev


# ----------------------------------------------------------------------
# Aggregation + rendering
# ----------------------------------------------------------------------


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}TiB"


def _fmt_sim_clock(seconds: float) -> str:
    days, rem = divmod(max(seconds, 0.0), 86400.0)
    hours = rem / 3600.0
    return f"{int(days)}d{hours:04.1f}h"


class ProgressAggregator:
    """Folds island heartbeats into a renderable per-island table.

    ``on_update`` (optional) is called with the aggregator after every
    heartbeat — the CLI's ``--progress`` renderer hooks it to redraw.
    Thread-safe: heartbeats may arrive from the parent drain loop and
    the serial in-process runner alike.
    """

    def __init__(
        self, on_update: "Callable[[ProgressAggregator], None] | None" = None
    ) -> None:
        self.started_s = time.time()
        self.heartbeats = 0
        self.latest: dict[int, Heartbeat] = {}
        self.on_update = on_update
        self._lock = threading.Lock()

    def update(self, heartbeat: "Heartbeat | Mapping[str, Any]") -> None:
        if not isinstance(heartbeat, Heartbeat):
            heartbeat = Heartbeat.from_payload(heartbeat)
        with self._lock:
            self.heartbeats += 1
            self.latest[heartbeat.island] = heartbeat
        if self.on_update is not None:
            self.on_update(self)

    def islands(self) -> list[Heartbeat]:
        """Latest heartbeat per island, island order."""
        with self._lock:
            return [self.latest[key] for key in sorted(self.latest)]

    def render(self) -> str:
        """The per-island status table, one line per island."""
        rows = self.islands()
        elapsed = time.time() - self.started_s
        header = (
            f"{'island':>6} {'epoch':>6} {'sim-clock':>9} {'queue':>6} "
            f"{'running':>7} {'dispatched':>10} {'peak RSS':>9} {'spill':>9}"
        )
        lines = [
            f"sharded build: {len(rows)} island(s), "
            f"{self.heartbeats} heartbeat(s), {elapsed:.1f}s elapsed",
            header,
        ]
        for hb in rows:
            lines.append(
                f"{hb.island:>6d} {hb.epoch:>6d} "
                f"{_fmt_sim_clock(hb.sim_time_s):>9} {hb.queue_depth:>6d} "
                f"{hb.running:>7d} {hb.dispatched:>10d} "
                f"{_fmt_bytes(hb.peak_rss_bytes):>9} "
                f"{_fmt_bytes(hb.spill_bytes):>9}"
            )
        if not rows:
            lines.append("  (no heartbeats yet)")
        return "\n".join(lines)


class ProgressPrinter(ProgressAggregator):
    """A :class:`ProgressAggregator` that prints as heartbeats arrive.

    On a TTY it redraws the island table in place with ANSI cursor
    moves (the ``repro obs top`` experience); otherwise it prints a
    throttled status line per update window, so piped output stays
    line-oriented.  Rendering goes to ``stream`` (stderr by default,
    keeping stdout clean for command output).
    """

    def __init__(
        self, stream=None, *, interval_s: float = 0.2, live: bool | None = None
    ) -> None:
        super().__init__(on_update=self._draw)
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.live = (
            live
            if live is not None
            else bool(getattr(self.stream, "isatty", lambda: False)())
        )
        self._last_draw = 0.0
        self._drawn_lines = 0

    def _draw(self, aggregator: "ProgressAggregator") -> None:
        now = time.monotonic()
        if now - self._last_draw < self.interval_s:
            return
        self._last_draw = now
        text = self.render()
        if self.live:
            if self._drawn_lines:
                # move up and clear the previous frame
                self.stream.write(f"\x1b[{self._drawn_lines}F\x1b[J")
            self.stream.write(text + "\n")
            self._drawn_lines = text.count("\n") + 1
        else:
            rows = self.islands()
            brief = " ".join(
                f"i{hb.island}:e{hb.epoch}/q{hb.queue_depth}" for hb in rows
            )
            self.stream.write(f"progress: {brief}\n")
        self.stream.flush()

    def finish(self) -> None:
        """Print the final table (plain mode prints it once, in full)."""
        if not self.live:
            self.stream.write(self.render() + "\n")
            self.stream.flush()


# ----------------------------------------------------------------------
# Background resource sampler
# ----------------------------------------------------------------------


def directory_bytes(root: str | Path) -> int:
    """Total file bytes under ``root`` (0 if it does not exist)."""
    total = 0
    try:
        for path in Path(root).rglob("*"):
            try:
                if path.is_file():
                    total += path.stat().st_size
            except OSError:
                continue
    except OSError:
        return total
    return total


class ResourceSampler:
    """Daemon thread sampling parent-process resources into metrics.

    Every ``interval_s`` it records:

    * ``repro_process_peak_rss_bytes`` — the parent's RSS high-water
      mark (same gauge the worker roll-up uses, merged by max);
    * ``repro_spill_dir_bytes`` — total bytes under each watched spill
      directory (gauge, labelled by directory);
    * ``repro_stream_rows_per_s`` — chunk throughput, the windowed
      delta of the ``repro_frame_stream_rows_total`` counters.

    Observation-only: it reads counters and the filesystem, never the
    build state.  ``stop()`` joins the thread; use as a context
    manager around a build.
    """

    def __init__(
        self,
        metrics=None,
        *,
        spill_dirs: "list[str | Path] | None" = None,
        interval_s: float = 0.5,
    ) -> None:
        #: ``None`` means "whatever registry is ambient at sample
        #: time" — the CLI installs the sampler before any session
        #: (and its registry) exists.
        self.metrics = metrics
        self.spill_dirs = [Path(d) for d in (spill_dirs or [])]
        self.interval_s = interval_s
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_rows = 0.0
        self._last_time = 0.0

    def watch(self, directory: str | Path) -> None:
        """Add a spill directory to the sampling set (thread-safe)."""
        self.spill_dirs.append(Path(directory))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self._last_time = time.monotonic()
        self._last_rows = self._stream_rows()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample()  # one final reading so short builds record data

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def _registry(self):
        if self.metrics is not None:
            return self.metrics
        from repro.obs.runtime import get_metrics

        return get_metrics()

    def _stream_rows(self) -> float:
        """Sum of the streamed-rows counters across all ``op`` labels."""
        metrics = self._registry()
        if not metrics.enabled:
            return 0.0
        total = 0.0
        for name, _labels, counter in metrics.samples("counter"):
            if name == "repro_frame_stream_rows_total":
                total += counter.value
        return total

    def sample(self) -> None:
        """Take one reading (also called once from :meth:`stop`)."""
        from repro.obs.runtime import peak_rss_bytes

        metrics = self._registry()
        if not metrics.enabled:
            return
        self.samples += 1
        rss = peak_rss_bytes()
        if rss:
            metrics.gauge(
                "repro_process_peak_rss_bytes",
                help="peak resident set size of the process (ru_maxrss)",
            ).set_max(rss)
        for directory in list(self.spill_dirs):
            metrics.gauge(
                "repro_spill_dir_bytes",
                help="total bytes under a watched spill directory",
                directory=str(directory),
            ).set(directory_bytes(directory))
        now = time.monotonic()
        rows = self._stream_rows()
        window = now - self._last_time
        if window > 0:
            metrics.gauge(
                "repro_stream_rows_per_s",
                help="streamed rows per second over the last sampling window",
            ).set((rows - self._last_rows) / window)
        self._last_rows = rows
        self._last_time = now
