"""Tests for the partitioned (sharded) dataset build.

The acceptance contract of the sharding refactor, pinned end to end at
the session level:

* for a fixed partition count the build is **bit-for-bit identical**
  whether the islands run serially in one process or fan out across
  the worker pool;
* ``partitions=1`` routes through the legacy serial code path and
  reproduces the pre-sharding dataset exactly;
* the merged dataset keeps the whole-machine shape (global node
  indices, one spec, job-id-ordered tables);
* the **streaming** build — islands spill to disk, the parent k-way
  merges chunk streams — yields the same tables chunk for chunk, for
  uncoupled islands and for interchange-coupled islands run serially
  or process-parallel.
"""

import numpy as np
import pytest

from repro.monitor.collector import MonitoringConfig
from repro.pipeline import Session
from repro.pipeline.shard import island_monitoring
from repro.slurm.interchange import InterchangeConfig
from repro.workload.generator import WorkloadConfig

# 3200 configured nodes at scale 0.02 -> 64 simulated nodes, so even a
# 4-way split leaves islands big enough for the largest (16-GPU) jobs.
SHARDED = dict(scale=0.02, seed=13, num_nodes=3200, partitions=4)


def datasets_equal(a, b):
    assert a.jobs.to_dict() == b.jobs.to_dict()
    assert a.gpu_jobs.to_dict() == b.gpu_jobs.to_dict()
    assert a.per_gpu.to_dict() == b.per_gpu.to_dict()
    assert len(a.timeseries) == len(b.timeseries)
    for series in a.timeseries:
        twin = b.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for name, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[name]), name


@pytest.fixture(scope="module")
def serial_session():
    session = Session(WorkloadConfig(**SHARDED), workers=1)
    session.dataset()
    return session


class TestBitIdentity:
    def test_parallel_build_matches_serial(self, serial_session):
        parallel = Session(WorkloadConfig(**SHARDED), workers=4).dataset()
        datasets_equal(serial_session.dataset(), parallel)

    def test_single_partition_matches_legacy(self):
        base = dict(SHARDED, partitions=1)
        legacy = Session(WorkloadConfig(**base)).dataset()
        # partitions=1 must be indistinguishable from the pre-sharding
        # build — same workload stream, same serial schedule stage.
        roundtrip = Session(WorkloadConfig(**base), workers=2).dataset()
        datasets_equal(legacy, roundtrip)


class TestMergedShape:
    def test_whole_machine_spec_and_global_nodes(self, serial_session):
        dataset = serial_session.dataset()
        assert dataset.spec.num_nodes == dataset.config.scaled_nodes
        assert "[partition" not in dataset.spec.name
        max_node = max(
            (node for record in dataset.records for node in record.nodes),
            default=0,
        )
        assert max_node < dataset.spec.num_nodes
        # records span more than one island's node range
        assert max_node >= dataset.spec.num_nodes // 4

    def test_records_in_job_id_order(self, serial_session):
        ids = [r.request.job_id for r in serial_session.dataset().records]
        assert ids == sorted(ids)

    def test_tables_sorted_for_process_independence(self, serial_session):
        dataset = serial_session.dataset()
        job_ids = np.asarray(dataset.gpu_jobs["job_id"])
        assert np.all(np.diff(job_ids) >= 0)

    def test_island_rss_gauge_recorded(self, serial_session):
        gauge = serial_session.metrics.gauge("repro_shard_island_peak_rss_bytes")
        assert gauge.value > 0

    def test_stage_names_unchanged(self, serial_session):
        from repro.pipeline import BUILD_STAGES

        assert tuple(serial_session.instrumentation.stage_names()) == BUILD_STAGES


class TestIslandCapacity:
    def test_oversized_job_fails_fast_with_remedy(self):
        from repro.cluster.partition import PartitionError, PartitionLayout
        from repro.cluster.spec import supercloud_spec
        from repro.pipeline.shard import check_island_capacity
        from tests.slurm.test_job import make_request

        layout = PartitionLayout.even(8, 4)  # 2-node (4-GPU) islands
        buckets = [[make_request(job_id=7, num_gpus=16)], [], [], []]
        with pytest.raises(PartitionError, match="fewer partitions"):
            check_island_capacity(layout, buckets, supercloud_spec(8))

    def test_fitting_jobs_pass(self):
        from repro.cluster.partition import PartitionLayout
        from repro.cluster.spec import supercloud_spec
        from repro.pipeline.shard import check_island_capacity
        from tests.slurm.test_job import make_request

        layout = PartitionLayout.even(8, 4)
        buckets = [[make_request(job_id=1, num_gpus=4)], [], [], []]
        check_island_capacity(layout, buckets, supercloud_spec(8))

    def test_cli_scale_too_small_for_partitions(self):
        # end to end: the session surfaces the actionable error instead
        # of a PlacementError from inside a pool worker
        from repro.cluster.partition import PartitionError

        session = Session(WorkloadConfig(scale=0.05, seed=20220214, partitions=2))
        with pytest.raises(PartitionError, match="fewer partitions"):
            session.dataset()


class TestIslandMonitoring:
    def test_single_partition_keeps_base_seed(self):
        base = MonitoringConfig(seed=99)
        assert island_monitoring(base, 0, 1) is base

    def test_islands_get_distinct_derived_seeds(self):
        base = MonitoringConfig(seed=99)
        seeds = {island_monitoring(base, i, 4).seed for i in range(4)}
        assert len(seeds) == 4
        assert island_monitoring(base, 2, 4).seed == island_monitoring(base, 2, 4).seed

    def test_default_config_when_none(self):
        derived = island_monitoring(None, 1, 2)
        assert derived.seed != MonitoringConfig().seed


class TestWorkerObservability:
    def test_pool_island_spans_adopted_into_session_trace(self):
        """A forked worker inherits an enabled tracer copy; its spans
        must still come home via drain/adopt, not die with the child."""
        session = Session(WorkloadConfig(**SHARDED), workers=4)
        session.dataset()
        payload = session.tracer.drain_payload()
        by_id = {span["id"]: span for span in payload}
        runs = [span for span in payload if span["name"] == "slurm.run"]
        # one simulator run per island, visible in the *session* trace
        assert len(runs) == 4
        for span in runs:
            # re-parented somewhere under the schedule stage span
            ancestors = set()
            parent = span["parent"]
            while parent in by_id:
                ancestors.add(by_id[parent]["name"])
                parent = by_id[parent]["parent"]
            assert "schedule" in ancestors

    def test_serial_island_spans_flow_inline(self):
        session = Session(WorkloadConfig(**SHARDED), workers=1)
        session.dataset()
        names = [span["name"] for span in session.tracer.drain_payload()]
        assert names.count("slurm.run") == 4


def streaming_equals_materialized(stream, exact):
    """Chunk-for-chunk equality against a materialized ground truth."""
    assert stream.is_streaming and not exact.is_streaming
    for name in ("jobs", "gpu_jobs", "per_gpu"):
        stream_table = getattr(stream, name)
        serial_table = getattr(exact, name)
        offset = 0
        for chunk in stream_table.chunks():
            assert tuple(chunk.column_names) == tuple(serial_table.column_names)
            for column in chunk.column_names:
                expected = np.asarray(serial_table[column])[
                    offset : offset + chunk.num_rows
                ]
                assert np.array_equal(
                    np.asarray(chunk[column]), expected
                ), (name, column)
            offset += chunk.num_rows
        assert offset == serial_table.num_rows, name
    assert len(stream.timeseries) == len(exact.timeseries)
    for series in exact.timeseries:
        twin = stream.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for metric, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[metric]), metric


class TestStreamingBuild:
    def test_streaming_build_matches_materialized(self, serial_session):
        stream = Session(WorkloadConfig(**SHARDED), workers=1).streaming_dataset(
            chunk_rows=512
        )
        streaming_equals_materialized(stream, serial_session.dataset())

    def test_streaming_dataset_is_memoized(self):
        session = Session(WorkloadConfig(**SHARDED), workers=1)
        first = session.streaming_dataset(chunk_rows=512)
        assert session.streaming_dataset() is first
        assert session.instrumentation.count("build") == 1

    def test_streaming_records_stay_out_of_the_parent(self):
        stream = Session(WorkloadConfig(**SHARDED), workers=1).streaming_dataset(
            chunk_rows=512
        )
        assert stream.records == []

    def test_materialize_roundtrip(self, serial_session):
        stream = Session(WorkloadConfig(**SHARDED), workers=1).streaming_dataset(
            chunk_rows=512
        )
        exact = serial_session.dataset()
        datasets_equal(stream.materialize(), exact)

    def test_single_partition_streaming_is_a_chunked_view(self):
        base = dict(SHARDED, partitions=1)
        session = Session(WorkloadConfig(**base))
        stream = session.streaming_dataset(chunk_rows=256)
        assert stream.is_streaming
        # The chunked view presents jobs in ascending job_id — the
        # order the sharded merge emits — not the completion order the
        # single-partition materialized table carries.
        assert (
            stream.jobs.materialize().to_dict()
            == session.dataset().jobs.sort_by("job_id").to_dict()
        )


class TestCoupledBuild:
    INTERCHANGE = InterchangeConfig(epoch_s=3600.0, migrate_after_s=900.0)

    @pytest.fixture(scope="class")
    def coupled_serial(self):
        session = Session(
            WorkloadConfig(**SHARDED), workers=1, interchange=self.INTERCHANGE
        )
        session.dataset()
        return session

    def test_coupling_changes_the_schedule(self, serial_session, coupled_serial):
        coupled = coupled_serial.dataset()
        uncoupled = serial_session.dataset()
        migrated = [
            r for r in coupled.records if r.request.tags.get("migrated")
        ]
        assert migrated, "interchange produced no migrations at this scale"
        assert coupled.jobs.to_dict() != uncoupled.jobs.to_dict()

    def test_parallel_coupled_matches_serial(self, coupled_serial):
        parallel = Session(
            WorkloadConfig(**SHARDED), workers=4, interchange=self.INTERCHANGE
        ).dataset()
        datasets_equal(coupled_serial.dataset(), parallel)

    def test_parallel_streaming_coupled_matches_serial(self, coupled_serial):
        stream = Session(
            WorkloadConfig(**SHARDED), workers=4, interchange=self.INTERCHANGE
        ).streaming_dataset(chunk_rows=512)
        streaming_equals_materialized(stream, coupled_serial.dataset())

    def test_interchange_extends_the_cache_key(self):
        from repro.pipeline.cache import dataset_key

        config = WorkloadConfig(**SHARDED)
        base = dataset_key(config, None)
        coupled = dataset_key(config, None, self.INTERCHANGE)
        assert base != coupled
        # None keeps the legacy payload: existing cache entries survive.
        assert base == dataset_key(config, None, None)


class TestSummary:
    def test_summary_reports_partition_layout(self, serial_session):
        text = serial_session.summary()
        assert "partitions: 4 (cohorts: 4)" in text

    def test_operator_summary_shows_islands(self, serial_session):
        from repro.reporting import operator_summary

        text = operator_summary(serial_session)
        assert "partition layout" in text
        assert "4 cluster islands" in text
        assert "island 0: nodes 0.." in text
