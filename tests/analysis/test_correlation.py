"""Tests for user-behavior correlations (Fig 12)."""

import numpy as np
import pytest

from repro.analysis.correlation import user_behavior_correlations
from repro.analysis.users import user_table
from repro.errors import AnalysisError
from repro.frame import Table


def synthetic_users(n=50, seed=0):
    rng = np.random.default_rng(seed)
    njobs = rng.pareto(1.0, n) * 20 + 1
    rows = []
    for i in range(n):
        rows.append(
            {
                "user": f"u{i}",
                "num_jobs": float(njobs[i]),
                "gpu_hours": float(njobs[i] * rng.uniform(0.5, 2.0)),
                # avg utilization rises with activity (expert users)
                "avg_runtime": float(rng.uniform(60, 600)),
                "avg_sm": float(np.log1p(njobs[i]) * 5 + rng.normal(0, 2)),
                "avg_mem_bw": float(np.log1p(njobs[i]) + rng.normal(0, 0.5)),
                # CoV unrelated to activity
                "cov_runtime": float(rng.uniform(0.5, 3.0)),
                "cov_sm": float(rng.uniform(0.5, 3.0)),
                "cov_mem_bw": float(rng.uniform(0.5, 3.0)),
            }
        )
    return Table.from_rows(rows)


class TestCorrelations:
    def test_output_shape(self):
        out = user_behavior_correlations(synthetic_users())
        assert out.num_rows == 12  # 2 activities x 6 behaviors
        assert set(out.column_names) == {"activity", "behavior", "rho", "p_value"}

    def test_engineered_positive_correlation_detected(self):
        out = user_behavior_correlations(synthetic_users())
        row = [
            r
            for r in out.iter_rows()
            if r["activity"] == "num_jobs" and r["behavior"] == "avg_sm"
        ][0]
        assert row["rho"] > 0.7
        assert row["p_value"] < 0.01

    def test_engineered_null_correlation_low(self):
        out = user_behavior_correlations(synthetic_users())
        row = [
            r
            for r in out.iter_rows()
            if r["activity"] == "num_jobs" and r["behavior"] == "cov_sm"
        ][0]
        assert abs(row["rho"]) < 0.4

    def test_too_few_users_rejected(self):
        with pytest.raises(AnalysisError):
            user_behavior_correlations(synthetic_users(n=2))


class TestOnGeneratedData:
    @pytest.fixture(scope="class")
    def correlations(self, gpu_jobs):
        users = user_table(gpu_jobs).filter(
            lambda t: np.asarray(t["num_jobs"], dtype=float) >= 3
        )
        return user_behavior_correlations(users)

    def _rho(self, correlations, activity, behavior):
        for row in correlations.iter_rows():
            if row["activity"] == activity and row["behavior"] == behavior:
                return row["rho"]
        raise KeyError((activity, behavior))

    def test_experts_use_gpus_better(self, correlations):
        assert self._rho(correlations, "num_jobs", "avg_sm") > 0.3

    def test_experts_not_more_predictable(self, correlations):
        # the paper's key negative result: activity does not predict
        # lower variability
        assert self._rho(correlations, "num_jobs", "cov_sm") < 0.5

    def test_avg_beats_cov_correlation(self, correlations):
        avg = self._rho(correlations, "num_jobs", "avg_sm")
        cov = self._rho(correlations, "num_jobs", "cov_sm")
        assert avg > cov
