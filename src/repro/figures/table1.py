"""Table I: system specifications."""

from __future__ import annotations

from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult
from repro.frame import Table


def run(dataset: SupercloudDataset) -> FigureResult:
    """Reproduce Table I from the modeled cluster spec.

    At reduced scale the node count shrinks proportionally; the
    comparisons therefore normalise per node where meaningful.
    """
    spec = dataset.spec
    rows = Table.from_rows(spec.summary_rows())
    return FigureResult(
        figure_id="table1",
        title="System specifications",
        series={"rows": rows},
        comparisons=[
            Comparison("GPUs per node", 2, spec.node.gpus_per_node),
            Comparison("GPU RAM", 32, spec.node.gpu.memory_gb, " GB"),
            Comparison("node RAM", 384, spec.node.ram_gb, " GB"),
            Comparison("cores per node", 40, spec.node.physical_cores),
            Comparison(
                "nodes (scaled)", 224 * dataset.config.scale, spec.num_nodes
            ),
        ],
        notes=f"cluster scaled by {dataset.config.scale:g}",
    )
