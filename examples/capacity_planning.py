"""Capacity planning: how small could the fleet be?

The paper attributes Supercloud's second-scale GPU waits to deliberate
over-provisioning (Sec. III takeaway).  This example reconstructs the
load timeline, then replays the same workload on progressively smaller
clusters to find where the seconds-scale queue breaks down — and
finally checks how much GPU sharing moves that breaking point.

Run with ``python examples/capacity_planning.py``.
"""

from repro import WorkloadConfig, generate_dataset
from repro.analysis.timeline import capacity_sweep, daily_gpu_hours, gpu_occupancy, surge_visibility
from repro.opportunities.sharing_sim import GpuSharingSimulator, jobs_from_dataset
from repro.workload.generator import WorkloadGenerator


def main() -> None:
    config = WorkloadConfig(scale=0.04, seed=37)
    dataset = generate_dataset(config)
    print(dataset.describe())
    print()

    timeline = gpu_occupancy(dataset.records, capacity=dataset.spec.total_gpus)
    print(
        f"GPU occupancy: mean {timeline.mean:.1f} / peak {timeline.peak:.0f} "
        f"of {dataset.spec.total_gpus} GPUs "
        f"({timeline.mean_utilization:.0%} mean utilization)"
    )

    surges = surge_visibility(
        daily_gpu_hours(dataset.records), config.knobs.deadline_windows
    )
    for row in surges.iter_rows():
        print(
            f"conference-deadline window day {row['window_start_day']:.0f}-"
            f"{row['window_end_day']:.0f}: load x{row['observed_ratio']:.2f} vs baseline"
        )
    print()

    print("replaying the workload at smaller cluster sizes:")
    requests = WorkloadGenerator(config).generate()
    nodes = dataset.spec.num_nodes
    # the largest multi-GPU job bounds how small the cluster can get
    min_nodes = -(-max(r.num_gpus for r in requests) // dataset.spec.node.gpus_per_node)
    candidates = sorted(
        {max(nodes // shrink, min_nodes) for shrink in (1, 2, 3, 4)}, reverse=True
    )
    sweep = capacity_sweep(requests, node_counts=candidates)
    print(sweep.to_string())
    print()

    print("how much does GPU sharing move the breaking point?")
    jobs = jobs_from_dataset(dataset, max_jobs=1500)
    sizes = GpuSharingSimulator().right_size(
        jobs, target_median_wait_s=5.0, max_gpus=dataset.spec.total_gpus
    )
    saving = 1.0 - sizes["shared"] / sizes["exclusive"]
    print(
        f"GPUs needed for a 5 s median wait: {sizes['exclusive']} exclusive "
        f"vs {sizes['shared']} shared ({saving:.0%} fewer)"
    )


if __name__ == "__main__":
    main()
