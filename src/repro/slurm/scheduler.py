"""The event-driven scheduler simulation.

Jobs are submitted at their arrival times, queued, placed when their
resources are free, and released when they finish.  A job's realised
end is ``min(intrinsic runtime, time limit)``; hitting the limit
produces a TIMEOUT exit (the fate of IDE jobs in the paper).

The simulator runs prolog/epilog hooks, mirroring how Supercloud
attaches its monitoring: the prolog starts per-node samplers and the
epilog stops them and copies data back (Sec. II, "System Monitoring").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.node import Cluster
from repro.cluster.spec import ClusterSpec, supercloud_spec
from repro.cluster.topology import FatTreeTopology
from repro.errors import SchedulerError
from repro.slurm.events import EventLoop
from repro.slurm.failures import FailureModel
from repro.slurm.job import EXIT_FOR_CLASS, ExitCondition, JobRecord, JobRequest
from repro.slurm.placement import PlacementPolicy
from repro.slurm.queue import JobQueue

PrologHook = Callable[[JobRequest, float, tuple[int, ...]], None]
EpilogHook = Callable[[JobRecord], None]
RunEndHook = Callable[["SimulationResult"], None]


@dataclass
class SchedulerConfig:
    """Tunable policy knobs."""

    backfill_depth: int = 64
    #: Priority boost for multi-GPU jobs ("scheduled quickly with a
    #: high priority", paper Sec. V).
    multi_gpu_priority: float = 10.0
    #: Seconds of scheduler overhead per dispatch (prolog startup,
    #: slurmctld cycle latency).  Gives single-GPU jobs their ~3 s
    #: median wait (paper Sec. V).
    dispatch_overhead_s: float = 3.0
    #: Overhead on the expedited path taken by priority (multi-GPU)
    #: jobs, matching their 1 s median wait.
    priority_dispatch_overhead_s: float = 1.0
    #: Optional hardware failure injection (see
    #: :class:`repro.slurm.failures.FailureModel`).
    failure_model: FailureModel | None = None
    #: Queue-priority policy: a registry name or a
    #: :class:`~repro.slurm.policies.PriorityPolicy` instance (see
    #: :mod:`repro.slurm.policies`).  The paper's system ran plain
    #: FCFS; when set, the policy's priorities replace the flat FCFS +
    #: multi-GPU boost.
    policy: object | None = None


@dataclass
class SimulationResult:
    """Everything the simulation produced."""

    records: list[JobRecord]
    makespan_s: float
    events_processed: int
    peak_queue_length: int
    config: SchedulerConfig
    node_failures: int = 0
    jobs_killed_by_failures: int = 0

    def gpu_records(self) -> list[JobRecord]:
        return [r for r in self.records if r.request.is_gpu_job]

    def cpu_records(self) -> list[JobRecord]:
        return [r for r in self.records if not r.request.is_gpu_job]


class SlurmSimulator:
    """Discrete-event simulation of the Supercloud scheduler."""

    def __init__(
        self,
        spec: ClusterSpec | None = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.spec = spec or supercloud_spec()
        self.config = config or SchedulerConfig()
        self.cluster = Cluster(self.spec)
        self.topology = FatTreeTopology(self.spec.num_nodes)
        self.placement = PlacementPolicy(self.cluster, self.topology)
        self.queue = JobQueue(self.config.backfill_depth)
        self.loop = EventLoop()
        self.records: list[JobRecord] = []
        #: job_id -> (request, start time, nodes, attempt number)
        self._running: dict[int, tuple[JobRequest, float, list[int], int]] = {}
        self._attempts: dict[int, int] = {}
        self._prolog_hooks: list[PrologHook] = []
        self._epilog_hooks: list[EpilogHook] = []
        self._run_end_hooks: list[RunEndHook] = []
        self._peak_queue = 0
        self._node_failures = 0
        self._jobs_killed = 0
        # observability handles; re-resolved against the ambient
        # registry at the top of every run()
        self._init_obs()
        if self.config.policy is None:
            self._policy = None
        elif isinstance(self.config.policy, str):
            from repro.slurm.policies import make_policy

            self._policy = make_policy(self.config.policy)
        else:
            self._policy = self.config.policy

    # ------------------------------------------------------------------
    def add_prolog(self, hook: PrologHook) -> None:
        """Register a hook called when a job starts (monitoring start)."""
        self._prolog_hooks.append(hook)

    def add_epilog(self, hook: EpilogHook) -> None:
        """Register a hook called when a job ends (monitoring stop).

        Epilogs run synchronously inside the event loop, so they must
        stay cheap and strictly ordered — the monitoring collector
        only consumes its RNG and enqueues deferred sampling tasks
        here; the expensive evaluation happens after :meth:`run`.
        """
        self._epilog_hooks.append(hook)

    def add_run_end(self, hook: RunEndHook) -> None:
        """Register a hook called once, when the event loop drains.

        Runs after the last epilog with the finished
        :class:`SimulationResult` — where deferred work (the
        collector's sampling queue) gets accounted before the caller
        decides how to evaluate it.
        """
        self._run_end_hooks.append(hook)

    # ------------------------------------------------------------------
    def _init_obs(self) -> None:
        """Resolve the ambient metrics into cached per-run handles.

        When observability is disabled every handle is the shared
        no-op instrument, so the event loop pays one dict-free method
        call per use; when enabled the handles are resolved once here
        instead of per event.
        """
        from repro.obs import runtime

        metrics = runtime.get_metrics()
        self._obs_enabled = metrics.enabled
        self._event_counters = {
            kind: metrics.counter(
                "repro_scheduler_events_total",
                help="scheduler events processed",
                kind=kind,
            )
            for kind in ("submit", "finish", "node_fail", "node_repair")
        }
        self._dispatch_counters = {
            backfill: metrics.counter(
                "repro_scheduler_dispatch_total",
                help="job dispatches (backfill = job jumped a stuck head-of-line job)",
                backfill=str(backfill).lower(),
            )
            for backfill in (False, True)
        }
        from repro.obs.metrics import COUNT_BUCKETS

        self._queue_depth_hist = metrics.histogram(
            "repro_scheduler_queue_depth",
            buckets=COUNT_BUCKETS,
            help="pending queue depth observed at each dispatch",
        )
        self._peak_queue_gauge = metrics.gauge(
            "repro_scheduler_peak_queue", help="peak pending queue length"
        )

    def run(self, requests: Sequence[JobRequest]) -> SimulationResult:
        """Simulate all requests to completion and return the records."""
        from repro.obs import runtime

        tracer = runtime.get_tracer()
        with tracer.span("slurm.run", category="scheduler", jobs=len(requests)) as span:
            result = self._run(requests)
            span.set(
                events=result.events_processed,
                makespan_s=round(result.makespan_s, 3),
                peak_queue=result.peak_queue_length,
            )
        return result

    def _run(self, requests: Sequence[JobRequest]) -> SimulationResult:
        self.begin(requests)
        self.advance()
        return self.finalize()

    # ------------------------------------------------------------------
    # Stepped execution (begin / advance / finalize)
    #
    # ``run()`` is begin + advance-to-completion + finalize.  The
    # partitioned runner (:mod:`repro.slurm.interchange`) drives the
    # same three phases directly, advancing each island only up to the
    # next interchange epoch boundary so cross-partition state stays
    # within one epoch of lag.
    # ------------------------------------------------------------------
    def begin(self, requests: Sequence[JobRequest]) -> None:
        """Schedule all submit (and failure) events; validate requests."""
        self._init_obs()
        seen: set[int] = set()
        last_submit = 0.0
        for request in requests:
            if request.job_id in seen:
                raise SchedulerError(f"duplicate job id {request.job_id}")
            seen.add(request.job_id)
            self.placement.check_feasible(request)
            self.loop.schedule(request.submit_time_s, "submit", request)
            last_submit = max(last_submit, request.submit_time_s)

        if self.config.failure_model is not None:
            horizon = last_submit + 96.0 * 3600.0
            for time_s, node in self.config.failure_model.draw_failure_times(
                self.spec.num_nodes, horizon
            ):
                self.loop.schedule(time_s, "node_fail", node)

    def advance(self, until: float | None = None) -> bool:
        """Process events with ``time <= until`` (all events if None).

        Returns True while events remain pending (i.e. the loop paused
        at the epoch boundary rather than draining).
        """
        event_counters = self._event_counters
        while self.loop:
            if until is not None:
                next_time = self.loop.peek_time()
                if next_time is not None and next_time > until:
                    return True
            event = self.loop.pop()
            if event.kind == "submit":
                self._on_submit(event.payload)
            elif event.kind == "finish":
                self._on_finish(event.payload)
            elif event.kind == "node_fail":
                self._on_node_fail(event.payload)
            elif event.kind == "node_repair":
                self._on_node_repair(event.payload)
            else:
                raise SchedulerError(f"unknown event kind {event.kind!r}")
            counter = event_counters.get(event.kind)
            if counter is not None:
                counter.inc()
            self._dispatch()
        return False

    def finalize(self) -> SimulationResult:
        """Check the queue drained, build the result, fire run-end hooks."""
        if self.queue:
            raise SchedulerError(
                f"simulation drained but {len(self.queue)} jobs still queued"
            )
        self._peak_queue_gauge.set_max(self._peak_queue)
        result = SimulationResult(
            records=self.records,
            makespan_s=self.loop.now,
            events_processed=self.loop.processed,
            peak_queue_length=self._peak_queue,
            config=self.config,
            node_failures=self._node_failures,
            jobs_killed_by_failures=self._jobs_killed,
        )
        for hook in self._run_end_hooks:
            hook(result)
        return result

    # ------------------------------------------------------------------
    def _priority(self, request: JobRequest) -> float:
        if self._policy is not None:
            return self._policy.priority(request)
        if request.num_gpus > 1:
            return self.config.multi_gpu_priority
        return 0.0

    def _on_submit(self, request: JobRequest) -> None:
        self.queue.push(request, self._priority(request))
        self._peak_queue = max(self._peak_queue, len(self.queue))

    def _dispatch(self) -> None:
        """Start every queued job that fits right now (with backfill)."""
        if self._policy is not None and self.queue:
            # stateful policies (fair share) drift between events
            self.queue.reprioritize(self._policy.priority)
        while True:
            depth = len(self.queue)
            started = self.queue.pop_first_placeable(self._can_place)
            if started is None:
                break
            if self._obs_enabled:
                self._dispatch_counters[self.queue.last_pop_was_backfill].inc()
                self._queue_depth_hist.observe(depth)
            self._start(started)

    def _can_place(self, request: JobRequest) -> bool:
        return self.placement.find_placement(request) is not None

    def _start(self, request: JobRequest) -> None:
        plan = self.placement.find_placement(request)
        if plan is None:
            raise SchedulerError(f"job {request.job_id} dispatched but has no placement")
        nodes = []
        for node_index, cores, memory_gb, gpus in plan:
            self.cluster.nodes[node_index].allocate(request.job_id, cores, memory_gb, gpus)
            nodes.append(node_index)
        self.placement.invalidate()
        overhead = (
            self.config.priority_dispatch_overhead_s
            if request.num_gpus > 1
            else self.config.dispatch_overhead_s
        )
        start = self.loop.now + overhead
        realised_runtime = min(request.runtime_s, request.time_limit_s)
        attempt = self._attempts.get(request.job_id, 0) + 1
        self._attempts[request.job_id] = attempt
        self._running[request.job_id] = (request, start, nodes, attempt)
        self.loop.schedule(start + realised_runtime, "finish", (request.job_id, attempt))
        for hook in self._prolog_hooks:
            hook(request, start, tuple(nodes))

    def _on_finish(self, payload: tuple[int, int]) -> None:
        job_id, attempt = payload
        entry = self._running.get(job_id)
        if entry is None or entry[3] != attempt:
            return  # stale event: the attempt was killed by a failure
        request, start, nodes, _ = self._running.pop(job_id)
        for node_index in nodes:
            self.cluster.nodes[node_index].release(job_id)
        self.placement.invalidate()
        record = JobRecord(
            request=request,
            start_time_s=start,
            end_time_s=self.loop.now,
            nodes=tuple(nodes),
            exit_condition=self._exit_condition(request),
        )
        record.validate()
        self.records.append(record)
        if self._policy is not None:
            self._policy.observe_completion(request, record.gpu_hours)
        for hook in self._epilog_hooks:
            hook(record)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def _on_node_fail(self, node_index: int) -> None:
        node = self.cluster.nodes[node_index]
        if not node.available:
            return  # already down; coincident event
        self._node_failures += 1
        node.available = False
        model = self.config.failure_model
        victims = list(node.allocations)
        for job_id in victims:
            self._kill(job_id, requeue=bool(model and model.requeue))
        self.placement.invalidate()
        repair = model.repair_time_s if model else 0.0
        self.loop.schedule(self.loop.now + repair, "node_repair", node_index)

    def _on_node_repair(self, node_index: int) -> None:
        self.cluster.nodes[node_index].available = True
        self.placement.invalidate()

    def _kill(self, job_id: int, requeue: bool) -> None:
        """Terminate a running job because a node under it died."""
        request, start, nodes, _ = self._running.pop(job_id)
        self._jobs_killed += 1
        for node_index in nodes:
            self.cluster.nodes[node_index].release(job_id)
        if requeue:
            request.tags["requeues"] = request.tags.get("requeues", 0) + 1
            self.queue.push(request, self._priority(request) + 1.0)
            self._peak_queue = max(self._peak_queue, len(self.queue))
            return
        record = JobRecord(
            request=request,
            start_time_s=start,
            # the node can die inside the dispatch-overhead window,
            # before the job's nominal start
            end_time_s=max(self.loop.now, start),
            nodes=tuple(nodes),
            exit_condition=ExitCondition.NODE_FAILURE,
        )
        record.validate()
        self.records.append(record)
        for hook in self._epilog_hooks:
            hook(record)

    @staticmethod
    def _exit_condition(request: JobRequest) -> ExitCondition:
        """Realise the intended life-cycle class as an exit condition.

        A job that hits its time limit times out regardless of intent —
        this is how long interactive sessions become IDE jobs.
        """
        if request.runtime_s >= request.time_limit_s:
            return ExitCondition.TIMEOUT
        return EXIT_FOR_CLASS[request.intended_class]
