"""Tests for power-cap impact analysis."""

import pytest

from repro.analysis.power import PowerCapImpact, power_cap_impact, power_headroom
from repro.errors import AnalysisError
from repro.frame import Table


def power_table(rows):
    return Table.from_rows(
        [{"power_w_mean": avg, "power_w_max": peak} for avg, peak in rows]
    )


class TestPowerCapImpact:
    def test_partition_of_jobs(self):
        jobs = power_table([(40.0, 80.0), (100.0, 200.0), (180.0, 290.0)])
        impacts = power_cap_impact(jobs, caps_w=(150.0,))
        impact = impacts[0]
        assert impact.unimpacted_fraction == pytest.approx(1.0 / 3.0)
        assert impact.max_impacted_fraction == pytest.approx(2.0 / 3.0)
        assert impact.avg_impacted_fraction == pytest.approx(1.0 / 3.0)

    def test_cap_at_board_power_unimpacts_everyone(self):
        jobs = power_table([(40.0, 299.0), (10.0, 50.0)])
        impact = power_cap_impact(jobs, caps_w=(300.0,))[0]
        assert impact.unimpacted_fraction == 1.0

    def test_multiple_caps_ordered_output(self):
        jobs = power_table([(40.0, 160.0)])
        impacts = power_cap_impact(jobs, caps_w=(150.0, 200.0))
        assert [i.cap_w for i in impacts] == [150.0, 200.0]
        assert impacts[0].unimpacted_fraction < impacts[1].unimpacted_fraction

    def test_invalid_cap_rejected(self):
        with pytest.raises(AnalysisError):
            power_cap_impact(power_table([(1.0, 2.0)]), caps_w=(0.0,))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            power_cap_impact(power_table([]))

    def test_inconsistent_partition_rejected(self):
        with pytest.raises(AnalysisError):
            PowerCapImpact(150.0, 0.5, 0.2, 0.1)


class TestHeadroom:
    def test_medians_reported(self):
        jobs = power_table([(40.0, 80.0), (60.0, 100.0), (50.0, 90.0)])
        headroom = power_headroom(jobs)
        assert headroom.median_avg_power_w == 50.0
        assert headroom.median_max_power_w == 90.0
        assert headroom.overprovision_factor_at_half_cap == 2.0

    def test_on_generated_data(self, gpu_jobs):
        headroom = power_headroom(gpu_jobs)
        # the paper's core claim: most provisioned power goes unused
        assert headroom.median_avg_power_w < 0.5 * headroom.board_power_w
        assert headroom.median_max_power_w < headroom.board_power_w

    def test_impact_monotone_in_cap(self, gpu_jobs):
        impacts = power_cap_impact(gpu_jobs, caps_w=(150.0, 200.0, 250.0))
        unimpacted = [i.unimpacted_fraction for i in impacts]
        assert unimpacted == sorted(unimpacted)
