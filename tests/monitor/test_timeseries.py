"""Tests for GPU time-series containers and the lossless disk spill."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.monitor.timeseries import (
    METRIC_NAMES,
    GpuTimeSeries,
    SpilledTimeSeriesStore,
    TimeSeriesStore,
)


def make_series(job_id=1, gpu_index=0, n=10):
    times = np.arange(n) * 0.1
    metrics = {name: np.linspace(0.0, 50.0, n) for name in METRIC_NAMES}
    return GpuTimeSeries(job_id, gpu_index, times, metrics)


class TestGpuTimeSeries:
    def test_properties(self):
        series = make_series(n=11)
        assert series.num_samples == 11
        assert series.duration_s == pytest.approx(1.0)

    def test_missing_metric_rejected(self):
        with pytest.raises(MonitoringError, match="missing metric"):
            GpuTimeSeries(1, 0, np.arange(3.0), {"sm": np.zeros(3)})

    def test_length_mismatch_rejected(self):
        metrics = {name: np.zeros(3) for name in METRIC_NAMES}
        metrics["power_w"] = np.zeros(4)
        with pytest.raises(MonitoringError, match="samples"):
            GpuTimeSeries(1, 0, np.arange(3.0), metrics)

    def test_metric_accessor(self):
        series = make_series()
        assert series.metric("sm")[0] == 0.0
        with pytest.raises(MonitoringError, match="unknown metric"):
            series.metric("temperature")

    def test_summary_has_min_mean_max(self):
        series = make_series()
        summary = series.summary()
        assert summary["sm_min"] == 0.0
        assert summary["sm_max"] == 50.0
        assert summary["sm_mean"] == pytest.approx(25.0)
        assert len(summary) == 3 * len(METRIC_NAMES)

    def test_empty_series_summary_is_nan(self):
        metrics = {name: np.empty(0) for name in METRIC_NAMES}
        series = GpuTimeSeries(1, 0, np.empty(0), metrics)
        assert np.isnan(series.summary()["sm_mean"])
        assert series.duration_s == 0.0


class TestTimeSeriesStore:
    def test_add_and_get(self):
        store = TimeSeriesStore()
        store.add(make_series(job_id=5, gpu_index=1))
        assert store.get(5, 1).job_id == 5
        assert len(store) == 1

    def test_duplicate_rejected(self):
        store = TimeSeriesStore()
        store.add(make_series())
        with pytest.raises(MonitoringError, match="duplicate"):
            store.add(make_series())

    def test_job_ids_distinct_sorted(self):
        store = TimeSeriesStore()
        store.add(make_series(job_id=9, gpu_index=0))
        store.add(make_series(job_id=2, gpu_index=0))
        store.add(make_series(job_id=9, gpu_index=1))
        assert store.job_ids() == [2, 9]

    def test_series_for_job(self):
        store = TimeSeriesStore()
        store.add(make_series(job_id=9, gpu_index=1))
        store.add(make_series(job_id=9, gpu_index=0))
        series = store.series_for_job(9)
        assert [s.gpu_index for s in series] == [0, 1]

    def test_get_missing_rejected(self):
        with pytest.raises(MonitoringError, match="no series"):
            TimeSeriesStore().get(1, 0)

    def test_total_samples(self):
        store = TimeSeriesStore()
        store.add(make_series(n=10))
        store.add(make_series(job_id=2, n=5))
        assert store.total_samples() == 15

    def test_iteration(self):
        store = TimeSeriesStore()
        store.add(make_series())
        assert sum(1 for _ in store) == 1


def filled_store(num_jobs=3, gpus=2, start=0):
    store = TimeSeriesStore()
    for job in range(start, start + num_jobs):
        for gpu in range(gpus):
            store.add(make_series(job_id=job, gpu_index=gpu, n=5 + job + gpu))
    return store


class TestSpilledStore:
    """The spill is **lossless** — raw float arrays, not the 0.5%-
    quantized ``repro.monitor.codec`` — so figure-grade statistics off
    the spill are bit-identical to the in-memory store."""

    def test_roundtrip_is_bit_exact(self, tmp_path):
        store = filled_store()
        spilled = store.spill(tmp_path / "series")
        assert len(spilled) == len(store)
        assert spilled.job_ids() == store.job_ids()
        for series in store:
            twin = spilled.get(series.job_id, series.gpu_index)
            assert np.array_equal(series.times_s, twin.times_s)
            for name, values in series.metrics.items():
                assert np.array_equal(values, twin.metrics[name]), name

    def test_total_samples_needs_no_loads(self, tmp_path):
        store = filled_store()
        spilled = store.spill(tmp_path / "series")
        assert spilled.total_samples() == store.total_samples()

    def test_iteration_in_sorted_key_order(self, tmp_path):
        spilled = filled_store().spill(tmp_path / "series")
        keys = [(s.job_id, s.gpu_index) for s in spilled]
        assert keys == sorted(keys)

    def test_series_for_job(self, tmp_path):
        spilled = filled_store().spill(tmp_path / "series")
        assert [s.gpu_index for s in spilled.series_for_job(1)] == [0, 1]

    def test_get_missing_rejected(self, tmp_path):
        spilled = filled_store().spill(tmp_path / "series")
        with pytest.raises(MonitoringError, match="no series"):
            spilled.get(99, 0)

    def test_materialize_roundtrip(self, tmp_path):
        store = filled_store()
        back = store.spill(tmp_path / "series").materialize()
        assert back.job_ids() == store.job_ids()
        for series in store:
            twin = back.get(series.job_id, series.gpu_index)
            assert np.array_equal(series.times_s, twin.times_s)

    def test_scan_table_matches_in_memory_scan(self, tmp_path):
        store = filled_store()
        spilled = store.spill(tmp_path / "series")
        expected = store.scan_table(chunk_rows=16).materialize()
        streamed = spilled.scan_table(chunk_rows=16).materialize()
        assert streamed.to_dict() == expected.to_dict()

    def test_union_of_disjoint_islands(self, tmp_path):
        first = filled_store(num_jobs=2, start=0)
        second = filled_store(num_jobs=2, start=10)
        union = SpilledTimeSeriesStore.union(
            [
                first.spill(tmp_path / "island0"),
                second.spill(tmp_path / "island1"),
            ]
        )
        assert len(union) == len(first) + len(second)
        assert union.job_ids() == first.job_ids() + second.job_ids()

    def test_union_rejects_duplicate_keys(self, tmp_path):
        first = filled_store().spill(tmp_path / "a")
        second = filled_store().spill(tmp_path / "b")
        with pytest.raises(MonitoringError, match="duplicate"):
            SpilledTimeSeriesStore.union([first, second])

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(MonitoringError, match="manifest"):
            SpilledTimeSeriesStore([tmp_path / "empty"])
