"""Tests for the end-to-end scheduler simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.spec import supercloud_spec
from repro.errors import SchedulerError
from repro.slurm.accounting import accounting_table
from repro.slurm.job import ExitCondition
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from tests.slurm.test_job import make_request


def simulate(requests, nodes=4, config=None):
    simulator = SlurmSimulator(supercloud_spec(nodes), config)
    result = simulator.run(requests)
    simulator.cluster.check_invariants()
    return result


class TestBasicRuns:
    def test_single_job_runs(self):
        result = simulate([make_request(job_id=1)])
        record = result.records[0]
        assert record.exit_condition is ExitCondition.COMPLETED
        assert record.run_time_s == pytest.approx(600.0)
        assert record.wait_time_s == pytest.approx(3.0)  # dispatch overhead

    def test_multi_gpu_uses_fast_path(self):
        result = simulate([make_request(job_id=1, num_gpus=2)])
        assert result.records[0].wait_time_s == pytest.approx(1.0)

    def test_all_jobs_finish(self):
        requests = [
            make_request(job_id=i, submit_time_s=i * 10.0, num_gpus=1 + i % 2)
            for i in range(20)
        ]
        result = simulate(requests)
        assert len(result.records) == 20

    def test_cluster_empty_after_drain(self):
        simulator = SlurmSimulator(supercloud_spec(2))
        simulator.run([make_request(job_id=i, submit_time_s=0.0) for i in range(6)])
        assert simulator.cluster.used_gpus == 0
        assert simulator.cluster.free_cores == simulator.spec.total_cores

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(SchedulerError, match="duplicate"):
            simulate([make_request(job_id=1), make_request(job_id=1)])

    def test_makespan_covers_last_job(self):
        result = simulate([make_request(job_id=1, submit_time_s=100.0, runtime_s=50.0)])
        assert result.makespan_s >= 153.0


class TestContention:
    def test_queueing_when_gpus_exhausted(self):
        # one node: 2 GPUs; three 2-GPU jobs arriving together must serialise
        requests = [
            make_request(job_id=i, submit_time_s=0.0, num_gpus=2, runtime_s=100.0)
            for i in range(3)
        ]
        result = simulate(requests, nodes=1)
        starts = sorted(r.start_time_s for r in result.records)
        assert starts[1] >= starts[0] + 100.0
        assert starts[2] >= starts[1] + 100.0

    def test_backfill_small_job_around_stuck_large(self):
        requests = [
            make_request(job_id=0, submit_time_s=0.0, num_gpus=2, runtime_s=500.0),
            make_request(job_id=1, submit_time_s=1.0, num_gpus=2, runtime_s=500.0),
            make_request(job_id=2, submit_time_s=2.0, num_gpus=0, cores=4, runtime_s=50.0),
        ]
        result = simulate(requests, nodes=1)
        by_id = {r.request.job_id: r for r in result.records}
        # the CPU job backfills around the queued second GPU job
        assert by_id[2].start_time_s < by_id[1].start_time_s

    def test_peak_queue_tracked(self):
        requests = [
            make_request(job_id=i, submit_time_s=0.0, num_gpus=2, runtime_s=100.0)
            for i in range(5)
        ]
        result = simulate(requests, nodes=1)
        assert result.peak_queue_length >= 3


class TestTimeout:
    def test_job_truncated_at_limit(self):
        request = make_request(job_id=1, runtime_s=5000.0, time_limit_s=1000.0)
        result = simulate([request])
        record = result.records[0]
        assert record.run_time_s == pytest.approx(1000.0)
        assert record.exit_condition is ExitCondition.TIMEOUT
        assert record.lifecycle_class == "ide"

    def test_intended_class_realised(self):
        request = make_request(job_id=1, intended_class="exploratory")
        result = simulate([request])
        assert result.records[0].exit_condition is ExitCondition.CANCELLED_BY_USER


class TestHooks:
    def test_prolog_epilog_called_in_order(self):
        calls = []
        simulator = SlurmSimulator(supercloud_spec(2))
        simulator.add_prolog(lambda req, start, nodes: calls.append(("start", req.job_id)))
        simulator.add_epilog(lambda rec: calls.append(("end", rec.request.job_id)))
        simulator.run([make_request(job_id=1)])
        assert calls == [("start", 1), ("end", 1)]

    def test_prolog_receives_nodes(self):
        seen = {}
        simulator = SlurmSimulator(supercloud_spec(2))
        simulator.add_prolog(lambda req, start, nodes: seen.update(nodes=nodes))
        simulator.run([make_request(job_id=1, num_gpus=4, cores=8)])
        assert len(seen["nodes"]) == 2


class TestAccounting:
    def test_table_columns(self):
        result = simulate([make_request(job_id=1)])
        table = accounting_table(result.records)
        assert table.num_rows == 1
        row = table.row(0)
        assert row["lifecycle_class"] == "mature"
        assert row["gpu_hours"] == pytest.approx(600.0 / 3600.0)
        assert row["num_nodes"] == 1

    def test_result_partitions(self):
        result = simulate(
            [make_request(job_id=1), make_request(job_id=2, num_gpus=0, cores=4)]
        )
        assert len(result.gpu_records()) == 1
        assert len(result.cpu_records()) == 1


@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 1000.0),   # submit time
            st.floats(1.0, 500.0),    # runtime
            st.integers(0, 4),        # gpus
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_simulation_invariants(job_specs):
    """Property: every job finishes exactly once, never starts before
    submission, and the cluster returns to pristine state."""
    requests = [
        make_request(
            job_id=i,
            submit_time_s=submit,
            runtime_s=runtime,
            num_gpus=gpus,
            cores=max(4, gpus),
        )
        for i, (submit, runtime, gpus) in enumerate(job_specs)
    ]
    simulator = SlurmSimulator(supercloud_spec(3))
    result = simulator.run(requests)
    assert len(result.records) == len(requests)
    assert {r.request.job_id for r in result.records} == set(range(len(requests)))
    for record in result.records:
        assert record.start_time_s >= record.request.submit_time_s
        assert record.run_time_s <= record.request.runtime_s + 1e-6
    assert simulator.cluster.used_gpus == 0
    simulator.cluster.check_invariants()
