"""Terminal rendering of distributions for the CLI.

``ascii_cdf`` draws an empirical CDF as a fixed-size character grid;
``ascii_histogram`` draws horizontal count bars.  Both are intentional
low-fi companions to :mod:`repro.plot.svg`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError


def ascii_cdf(
    values,
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Render the ECDF of ``values`` as text."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ReproError("no finite values to plot")
    if log_x:
        arr = arr[arr > 0]
        if arr.size == 0:
            raise ReproError("log x axis needs positive values")

    lo, hi = float(arr[0]), float(arr[-1])
    if lo == hi:
        hi = lo + 1.0

    def x_of(column: int) -> float:
        t = column / max(width - 1, 1)
        if log_x:
            return 10 ** (math.log10(lo) + t * (math.log10(hi) - math.log10(lo)))
        return lo + t * (hi - lo)

    grid = [[" "] * width for _ in range(height)]
    for column in range(width):
        p = float(np.searchsorted(arr, x_of(column), side="right")) / arr.size
        row = min(int((1.0 - p) * (height - 1)), height - 1)
        grid[row][column] = "*"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        p = 1.0 - i / (height - 1)
        lines.append(f"{p:4.2f} |" + "".join(row))
    lo_label = _fmt(lo)
    hi_label = _fmt(hi)
    axis = " " * 6 + lo_label + " " * max(width - len(lo_label) - len(hi_label), 1) + hi_label
    lines.append(" " * 5 + "+" + "-" * width)
    lines.append(axis + ("  (log x)" if log_x else ""))
    return "\n".join(lines)


def ascii_histogram(labels, counts, width: int = 40, title: str = "") -> str:
    """Render horizontal bars of ``counts`` keyed by ``labels``."""
    labels = [str(label) for label in labels]
    counts = [float(c) for c in counts]
    if len(labels) != len(counts):
        raise ReproError("labels and counts differ in length")
    if not labels:
        raise ReproError("nothing to plot")
    peak = max(counts) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, count in zip(labels, counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{label.rjust(label_width)} | {bar} {_fmt(count)}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"
