"""CSV, JSONL, and NPZ persistence for :class:`repro.frame.Table`.

The epilog of the monitoring substrate writes per-node files back to a
central location (mirroring the paper's data collection); these helpers
are the serialization layer.  CSV readers infer numeric columns.

Two access patterns are supported: the classic whole-table
``read_*``/``write_*`` pair, and the *streaming* ``scan_csv``/
``scan_jsonl`` generators that yield bounded-size :class:`Table`
chunks for :class:`repro.frame.chunked.ChunkedTable`.  The NPZ codec
(``write_table_npz``/``read_table_npz``) is the spill format of the
chunked engine: numeric columns round-trip bit-for-bit, object columns
via pickle.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.errors import FrameError
from repro.frame.table import Table, _unwrap


def write_csv(table: Table, path: str | Path) -> Path:
    """Write the table to ``path`` as UTF-8 CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow([_serialize(v) for v in row.values()])
    return path


def read_csv(path: str | Path) -> Table:
    """Read a CSV written by :func:`write_csv`, inferring numeric columns."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise FrameError(f"CSV file {path} is empty") from None
        raw_rows = list(reader)
    columns: dict[str, list[Any]] = {name: [] for name in header}
    for raw in raw_rows:
        if len(raw) != len(header):
            raise FrameError(f"CSV row has {len(raw)} cells, header has {len(header)}")
        for name, cell in zip(header, raw):
            columns[name].append(_parse(cell))
    return Table(columns)


def write_jsonl(table: Table, path: str | Path) -> Path:
    """Write one JSON object per row and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for row in table.iter_rows():
            fh.write(json.dumps({k: _unwrap(v) for k, v in row.items()}) + "\n")
    return path


def read_jsonl(path: str | Path) -> Table:
    """Read a JSONL file into a table (union of keys across rows)."""
    rows = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return Table.from_rows(rows)


def scan_csv(path: str | Path, chunk_rows: int = 65536) -> Iterator[Table]:
    """Stream a CSV written by :func:`write_csv` as bounded-size tables.

    Each yielded chunk holds at most ``chunk_rows`` rows and shares the
    header's column set.  Cell typing is per-chunk (the same
    int/float/bool/str inference as :func:`read_csv`), so a column may
    surface as numeric in one chunk and object in another; the chunked
    verbs are dtype-tolerant by design.
    """
    if chunk_rows < 1:
        raise FrameError(f"chunk_rows must be >= 1, got {chunk_rows}")
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise FrameError(f"CSV file {path} is empty") from None
        columns: dict[str, list[Any]] = {name: [] for name in header}
        filled = 0
        for raw in reader:
            if len(raw) != len(header):
                raise FrameError(
                    f"CSV row has {len(raw)} cells, header has {len(header)}"
                )
            for name, cell in zip(header, raw):
                columns[name].append(_parse(cell))
            filled += 1
            if filled == chunk_rows:
                yield Table(columns)
                columns = {name: [] for name in header}
                filled = 0
        if filled:
            yield Table(columns)


def scan_jsonl(path: str | Path, chunk_rows: int = 65536) -> Iterator[Table]:
    """Stream a JSONL file as bounded-size tables.

    The column set is fixed by the first row (later rows may omit keys,
    which become ``None``; extra keys raise), so every chunk is
    concat-compatible.
    """
    if chunk_rows < 1:
        raise FrameError(f"chunk_rows must be >= 1, got {chunk_rows}")
    path = Path(path)
    columns: list[str] | None = None
    rows: list[dict[str, Any]] = []
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if columns is None:
                columns = list(row)
            else:
                extra = [k for k in row if k not in columns]
                if extra:
                    raise FrameError(
                        f"JSONL row introduces new column(s) {extra} after the "
                        f"first row fixed {columns}"
                    )
            rows.append(row)
            if len(rows) == chunk_rows:
                yield Table.from_rows(rows, columns=columns)
                rows = []
    if rows and columns is not None:
        yield Table.from_rows(rows, columns=columns)


def write_table_npz(
    table: Table, path: str | Path, codec: "SpillCodec | None" = None
) -> Path:
    """Write one table as a ``.npz`` archive (the spill format).

    With ``codec=None`` this is the legacy layout: one raw ``c{i}``
    member per column (numeric columns round-trip bit-for-bit, object
    columns through pickle).  With a :class:`~repro.frame.codec
    .SpillCodec` each column is encoded independently (delta/RLE for
    integers, exact RLE for run-heavy floats, dictionary coding for
    object columns, opt-in quantisation for columns the codec names)
    and the members land zlib-compressed; a ``__codec__`` manifest
    records the per-column scheme so :func:`read_table_npz` can decode
    either layout transparently.  Column order is preserved via the
    ``__names__`` manifest in both layouts.
    """
    path = Path(path)
    if path.suffix != ".npz":
        raise FrameError(f"spill files must end in .npz, got {path.name}")
    path.parent.mkdir(parents=True, exist_ok=True)
    names = np.asarray(table.column_names, dtype=object)
    if codec is None:
        arrays = {
            f"c{i}": table.column(name) for i, name in enumerate(table.column_names)
        }
        with path.open("wb") as fh:
            np.savez(fh, __names__=names, **arrays)
        return path
    schemes: list[str] = []
    arrays = {}
    for i, name in enumerate(table.column_names):
        scheme, parts = codec.scheme_for(name, np.asarray(table.column(name)))
        schemes.append(scheme)
        for suffix, values in parts.items():
            member = f"c{i}_{suffix}" if suffix else f"c{i}"
            arrays[member] = values
    manifest = np.asarray(schemes, dtype=object)
    with path.open("wb") as fh:
        np.savez_compressed(
            fh,
            __names__=names,
            __codec__=manifest,
            __rows__=np.asarray([table.num_rows], dtype=np.int64),
            **arrays,
        )
    return path


def read_table_npz(path: str | Path) -> Table:
    """Read a table written by :func:`write_table_npz` (either layout)."""
    from repro.frame.codec import decode_column

    with np.load(Path(path), allow_pickle=True) as archive:
        names = [str(n) for n in archive["__names__"]]
        if "__codec__" not in archive.files:
            return Table({name: archive[f"c{i}"] for i, name in enumerate(names)})
        schemes = [str(s) for s in archive["__codec__"]]
        columns = {}
        for i, (name, scheme) in enumerate(zip(names, schemes)):
            prefix = f"c{i}_"
            parts = {
                member[len(prefix):]: archive[member]
                for member in archive.files
                if member.startswith(prefix)
            }
            if f"c{i}" in archive.files:
                parts[""] = archive[f"c{i}"]
            columns[name] = decode_column(scheme, parts)
        return Table(columns)


def table_raw_bytes(table: Table) -> int:
    """Bytes the legacy spill layout would write for ``table``'s columns.

    The raw side of the spill compression ratio: numeric columns count
    their buffer size, object columns their pickled size.
    """
    from repro.frame.codec import column_raw_bytes

    return sum(
        column_raw_bytes(np.asarray(table.column(name)))
        for name in table.column_names
    )


def _serialize(value: Any) -> Any:
    if value is None:
        return ""
    return value


def _parse(cell: str) -> Any:
    """Best-effort scalar parse: int, then float, then string."""
    if cell == "":
        return None
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        pass
    if cell == "True":
        return True
    if cell == "False":
        return False
    return cell
