"""The sharded dataset build: island simulation fan-out + merge.

With ``WorkloadConfig.partitions > 1`` the build stage runs one
:class:`~repro.slurm.scheduler.SlurmSimulator` (plus its own
partition-local :class:`~repro.monitor.collector.MonitoringCollector`)
per cluster island, optionally across the
:func:`~repro.pipeline.parallel.parallel_map` process pool, and merges
the per-island outputs deterministically:

* job records — global job-id order, node indices remapped to the
  whole machine;
* monitoring tables — merged into ``(job_id[, gpu_index])`` order, so
  the merge is independent of which process ran which island;
* time series — disjoint union of the island stores;
* obs spans/metrics — drained in each worker and re-parented into the
  session trace in partition order.

Two orthogonal axes extend the original fan-out:

* **coupling** — with a coupled
  :class:`~repro.slurm.interchange.InterchangeConfig` (migration or
  fair-share sync) the islands run the lockstep epoch protocol across
  persistent worker processes via
  :class:`~repro.slurm.parallel.ParallelPartitionedRunner`, exchanging
  only the bounded interchange payload each epoch — bit-identical to
  the serial lockstep runner;
* **streaming** — islands spill their monitoring tables and series to
  per-island ``.npz`` chunk directories and return *handles*; the
  parent k-way-merges the key-sorted spill streams
  (:func:`~repro.frame.merge_sorted_chunked`) and assembles the
  dataset chunk-wise (:meth:`~repro.frame.ChunkedTable.join_sorted`),
  so its resident set is bounded by the chunk size instead of the
  trace size.  Streaming datasets carry
  :class:`~repro.frame.ChunkedTable` job tables, a
  :class:`~repro.monitor.timeseries.SpilledTimeSeriesStore`, and no
  job records.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.partition import Partition, PartitionError, PartitionLayout
from repro.monitor.collector import MonitoringConfig
from repro.pipeline.instrument import PipelineInstrumentation
from repro.pipeline.parallel import parallel_map
from repro.workload.generator import WorkloadConfig

#: Job columns joined onto ``per_gpu`` rows during assembly.
CONTEXT_COLUMNS = (
    "job_id", "user", "num_gpus", "run_time_s", "gpu_hours",
    "lifecycle_class", "interface",
)


def island_monitoring(
    monitoring: MonitoringConfig | None, partition_index: int, num_partitions: int
) -> MonitoringConfig:
    """The partition-local monitoring config for one island.

    Each island's collector needs its own RNG stream (sampling draws
    happen in island-local job-completion order), derived from the
    base monitoring seed with the partition index as the spawn key —
    the same stream no matter which process runs the island.
    """
    base = monitoring if monitoring is not None else MonitoringConfig()
    if num_partitions <= 1:
        return base
    derived = int(
        np.random.SeedSequence(
            entropy=base.seed, spawn_key=(partition_index,)
        ).generate_state(1)[0]
    )
    return dataclasses.replace(base, seed=derived)


@dataclass
class IslandTask:
    """Everything one island needs, picklable for the pool."""

    partition: Partition
    num_partitions: int
    config: WorkloadConfig
    monitoring: MonitoringConfig | None
    requests: list
    #: pid of the process that built the task; lets the runner tell the
    #: in-process serial path from a forked pool worker (a fork copies
    #: the parent's *enabled* ambient tracer, so enabled-ness alone
    #: cannot distinguish the two).
    parent_pid: int = 0
    #: Streaming build: spill monitoring outputs under this directory
    #: (``island_<index>/``) and return handles instead of tables.
    spill_dir: str | None = None
    chunk_rows: int | None = None


@dataclass
class IslandBuildResult:
    """One island's outputs, node indices already global."""

    partition_index: int
    records: list
    gpu_summary: object
    per_gpu: object
    store: object
    sampling_rows: int
    events_processed: int
    peak_rss_bytes: float = 0.0
    span_payload: list | None = None
    metrics_snapshot: dict | None = field(default=None, repr=False)
    events_payload: list | None = field(default=None, repr=False)
    #: Streaming build: spill-directory handles (see
    #: :func:`_island_outputs`); ``None`` on the materialized path.
    handles: dict | None = None


def _island_outputs(
    collector, records: list, partition_index: int,
    spill_dir: str | None, chunk_rows: int | None,
) -> dict:
    """Flush one island's collector and package its monitoring outputs.

    Materialized path (``spill_dir is None``): the tables and series
    store come back as objects.  Streaming path: every output is
    spilled under ``<spill_dir>/island_<index>/`` in the key order the
    parent merge expects — accounting and the per-job GPU summary
    sorted by ``job_id``, the per-GPU summary by ``(job_id,
    gpu_index)`` — and only directory handles plus row counts return.
    """
    sampling_rows = collector.flush(workers=1)
    if spill_dir is None:
        return {
            "partition_index": partition_index,
            "sampling_rows": sampling_rows,
            "gpu_summary": collector.job_gpu_table(),
            "per_gpu": collector.per_gpu_table(),
            "store": collector.store,
            "handles": None,
        }
    from repro.frame import DEFAULT_CHUNK_ROWS
    from repro.slurm.accounting import accounting_chunked

    island_dir = Path(spill_dir) / f"island_{partition_index:03d}"
    rows = chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS
    ordered = sorted(records, key=lambda record: record.request.job_id)
    accounting_chunked(ordered, rows).spill(island_dir / "jobs")
    gpu_summary = collector.job_gpu_table().sort_by("job_id")
    gpu_summary.to_chunked(rows).spill(island_dir / "gpu_summary")
    per_gpu = collector.sorted_summary_stream(rows).spill(island_dir / "per_gpu")
    collector.store.spill(island_dir / "series")
    return {
        "partition_index": partition_index,
        "sampling_rows": sampling_rows,
        "gpu_summary": None,
        "per_gpu": None,
        "store": None,
        "handles": {
            "root": str(island_dir),
            "jobs_rows": len(ordered),
            "gpu_summary_rows": gpu_summary.num_rows,
            "per_gpu_rows": per_gpu.num_rows,
        },
    }


def _build_island(task: IslandTask) -> IslandBuildResult:
    from repro.cluster.spec import supercloud_spec
    from repro.monitor.collector import MonitoringCollector
    from repro.obs.runtime import peak_rss_bytes
    from repro.slurm.interchange import _remap_nodes
    from repro.slurm.scheduler import SlurmSimulator

    part = task.partition
    base_spec = supercloud_spec(task.config.scaled_nodes)
    simulator = SlurmSimulator(part.spec(base_spec))
    monitoring = island_monitoring(task.monitoring, part.index, task.num_partitions)
    collector = MonitoringCollector(monitoring).attach(simulator)
    if task.spill_dir is not None:
        collector.enable_spill(
            Path(task.spill_dir) / f"island_{part.index:03d}" / "summary",
            task.chunk_rows,
        )
    result = simulator.run(task.requests)
    simulator.cluster.check_invariants()
    _remap_nodes(result.records, part.node_start)
    outputs = _island_outputs(
        collector, result.records, part.index, task.spill_dir, task.chunk_rows
    )
    return IslandBuildResult(
        partition_index=part.index,
        records=[] if task.spill_dir is not None else result.records,
        gpu_summary=outputs["gpu_summary"],
        per_gpu=outputs["per_gpu"],
        store=outputs["store"],
        sampling_rows=outputs["sampling_rows"],
        events_processed=result.events_processed,
        peak_rss_bytes=peak_rss_bytes(),
        handles=outputs["handles"],
    )


def _run_island(task: IslandTask) -> IslandBuildResult:
    """Pool-safe island entry: owns its obs pair inside a fresh worker.

    In-process (serial fallback, session observability ambient) the
    island's spans flow straight into the session trace.  In a worker
    process — recognised by the pid differing from the task builder's,
    since a forked worker inherits a *copy* of the parent's enabled
    tracer whose spans would be lost with the child — the task runs
    under its own tracer/registry and ships the drained payloads home.
    """
    from repro.obs import runtime

    if os.getpid() == task.parent_pid and runtime.get_tracer().enabled:
        return _build_island(task)
    from repro.obs.events import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    tracer = Tracer(process_name=f"repro-island-{task.partition.index}")
    metrics = MetricsRegistry()
    recorder = FlightRecorder(island=task.partition.index)
    tracer.listener = recorder.span_closed
    with runtime.use(tracer, metrics, recorder):
        result = _build_island(task)
    result.span_payload = tracer.drain_payload()
    result.metrics_snapshot = metrics.drain()
    result.events_payload = recorder.drain_payload()
    return result


def _island_setup(simulator, partition: Partition, context: dict):
    """Coupled-run setup hook: attach the partition-local collector.

    Runs inside the island's worker process (or in-process on the
    serial fallback) before ``begin``; the returned state travels to
    :func:`_island_finish` untouched.
    """
    from repro.monitor.collector import MonitoringCollector

    monitoring = island_monitoring(
        context.get("monitoring"), partition.index, context["num_partitions"]
    )
    collector = MonitoringCollector(monitoring).attach(simulator)
    spill_dir = context.get("spill_dir")
    if spill_dir is not None:
        collector.enable_spill(
            Path(spill_dir) / f"island_{partition.index:03d}" / "summary",
            context.get("chunk_rows"),
        )
    return (collector, partition, context)


def _island_finish(simulator, state, result):
    """Coupled-run finish hook: flush + package the island's outputs.

    Receives the finalized :class:`SimulationResult` (records already
    remapped to global node indices) and returns the same payload dict
    the fan-out path builds — materialized tables, or spill handles in
    the streaming build.
    """
    collector, partition, context = state
    simulator.cluster.check_invariants()
    return _island_outputs(
        collector,
        result.records,
        partition.index,
        context.get("spill_dir"),
        context.get("chunk_rows"),
    )


def check_island_capacity(layout: PartitionLayout, buckets: list, spec) -> None:
    """Fail fast, with a remedy, when an island cannot place its jobs.

    Splitting a small machine into many islands can leave every island
    smaller than the largest job in its bucket; without this check the
    failure surfaces as a :class:`PlacementError` deep inside a pool
    worker.
    """
    gpus_per_node = spec.node.gpus_per_node
    for part, bucket in zip(layout, buckets):
        if not bucket:
            continue
        worst = max(bucket, key=lambda request: request.num_gpus)
        needed = -(-worst.num_gpus // gpus_per_node)
        if worst.num_gpus and needed > part.num_nodes:
            raise PartitionError(
                f"island {part.index} has {part.num_nodes} of the machine's "
                f"{layout.total_nodes} nodes, but job {worst.job_id} in its "
                f"bucket needs {needed} nodes ({worst.num_gpus} GPUs); use "
                "fewer partitions, or a larger scale / num_nodes so every "
                f"island has at least {needed} nodes"
            )


def _merge_tables(tables: list, sort_keys: tuple[str, ...]):
    """Concatenate island tables and sort into a process-independent
    order; empty islands (no rows yet, schema-less) are skipped."""
    from repro.frame import concat_tables

    filled = [table for table in tables if table.num_rows]
    if not filled:
        return tables[0]
    merged = concat_tables(filled) if len(filled) > 1 else filled[0]
    return merged.sort_by(*sort_keys)


def _merge_spilled(
    handles: list[dict], name: str, keys: tuple[str, ...],
    chunk_rows: int, column_names: tuple[str, ...] | None = None,
):
    """K-way merge the islands' key-sorted spill streams for one output.

    Each island directory re-reads lazily, so the parent holds one
    in-flight chunk per island plus the current merge segment — never
    a whole island's table.
    """
    from repro.frame import ChunkedTable, merge_sorted_chunked

    total = 0
    sources = []
    for handle in handles:
        rows = handle[f"{name}_rows"]
        total += rows
        if rows:
            sources.append(
                ChunkedTable.scan(Path(handle["root"]) / name, chunk_rows)
            )
    if not sources:
        return ChunkedTable((), column_names=column_names, num_rows=0)
    merged = merge_sorted_chunked(sources, keys, chunk_rows=chunk_rows)
    merged._num_rows = total
    return merged


def _keep_gpu_jobs(chunk):
    """The paper's GPU-job filter (>= 30 s, at least one GPU), as a
    per-chunk predicate for the streaming assemble."""
    from repro.workload.calibration import PAPER_TARGETS

    return (np.asarray(chunk["num_gpus"]) > 0) & (
        np.asarray(chunk["run_time_s"], dtype=float)
        >= PAPER_TARGETS.short_job_filter_s
    )


def build_sharded_dataset(
    config: WorkloadConfig,
    monitoring: MonitoringConfig | None,
    inst: PipelineInstrumentation,
    workers: int = 1,
    *,
    interchange=None,
    streaming: bool = False,
    spill_dir: str | Path | None = None,
    chunk_rows: int | None = None,
):
    """The partitioned counterpart of ``session._build_dataset``.

    Same five stages, same output shape.  ``schedule`` fans the
    islands across the pool — :func:`parallel_map` for uncoupled
    islands, the persistent-process
    :class:`~repro.slurm.parallel.ParallelPartitionedRunner` when
    ``interchange`` couples them — and ``monitor`` merges the
    partition-local outputs.  With ``streaming=True`` the merge is the
    k-way spill merge and ``assemble`` is chunk-wise; the returned
    dataset holds chunked tables, a spilled series store, and no job
    records (``spill_dir`` defaults to a fresh temp directory).
    """
    import tempfile

    from repro.cluster.spec import supercloud_spec
    from repro.dataset import SupercloudDataset
    from repro.monitor.timeseries import SpilledTimeSeriesStore, TimeSeriesStore
    from repro.slurm.accounting import ACCOUNTING_COLUMNS, accounting_table
    from repro.slurm.interchange import route_requests
    from repro.workload.calibration import PAPER_TARGETS
    from repro.workload.cohorts import generate_sharded

    coupled = interchange is not None and interchange.coupled
    if streaming and spill_dir is None:
        spill_dir = tempfile.mkdtemp(prefix="repro-shard-")
    spill = str(spill_dir) if streaming else None

    with inst.stage("workload") as probe:
        requests = generate_sharded(config, workers=workers)
        probe.rows = len(requests)

    layout = PartitionLayout.even(config.scaled_nodes, config.partitions)
    spec = supercloud_spec(config.scaled_nodes)

    with inst.stage("schedule") as probe:
        buckets = route_requests(requests, len(layout))
        check_island_capacity(layout, buckets, spec)
        if coupled:
            from repro.slurm.parallel import ParallelPartitionedRunner

            runner = ParallelPartitionedRunner(
                layout,
                spec=spec,
                interchange=interchange,
                workers=workers,
                island_setup=_island_setup,
                island_finish=_island_finish,
                island_context={
                    "monitoring": monitoring,
                    "num_partitions": len(layout),
                    "spill_dir": spill,
                    "chunk_rows": chunk_rows,
                },
                return_records=not streaming,
            )
            outcome = runner.run(requests)
            islands = outcome.extras
            records = [] if streaming else outcome.merged_records()
            island_peak = outcome.island_peak_rss_bytes
            if outcome.mode == "serial":
                from repro.obs.runtime import peak_rss_bytes

                island_peak = peak_rss_bytes()
            inst.metrics.counter(
                "repro_shard_migrations_total",
                help="jobs migrated between islands by the interchange",
            ).inc(outcome.migrations)
        else:
            tasks = [
                IslandTask(
                    partition=part,
                    num_partitions=len(layout),
                    config=config,
                    monitoring=monitoring,
                    requests=bucket,
                    parent_pid=os.getpid(),
                    spill_dir=spill,
                    chunk_rows=chunk_rows,
                )
                for part, bucket in zip(layout, buckets)
            ]
            results = parallel_map(_run_island, tasks, workers=workers)
            from repro.obs.runtime import get_recorder

            parent = inst.tracer.current_span_id()
            recorder = get_recorder()
            for island in results:
                if island.span_payload:
                    inst.tracer.adopt(island.span_payload, parent=parent)
                if island.metrics_snapshot:
                    inst.metrics.merge(island.metrics_snapshot)
                if island.events_payload and recorder.enabled:
                    recorder.adopt(island.events_payload)
            islands = [
                {
                    "partition_index": island.partition_index,
                    "sampling_rows": island.sampling_rows,
                    "gpu_summary": island.gpu_summary,
                    "per_gpu": island.per_gpu,
                    "store": island.store,
                    "handles": island.handles,
                }
                for island in results
            ]
            records = [record for island in results for record in island.records]
            records.sort(key=lambda record: record.request.job_id)
            island_peak = max(island.peak_rss_bytes for island in results)
        inst.metrics.gauge(
            "repro_shard_island_peak_rss_bytes",
            help="largest per-island process peak RSS in the sharded build",
        ).set_max(island_peak)
        probe.rows = (
            sum(island["handles"]["jobs_rows"] for island in islands)
            if streaming
            else len(records)
        )

    with inst.stage("sampling") as probe:
        # Sampling already ran island-locally inside ``schedule``; this
        # stage only accounts for it so stage rows stay comparable.
        probe.rows = sum(island["sampling_rows"] for island in islands)

    with inst.stage("monitor") as probe:
        from repro.frame import DEFAULT_CHUNK_ROWS

        if streaming:
            handles = [island["handles"] for island in islands]
            rows = chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS
            jobs_stream = _merge_spilled(
                handles, "jobs", ("job_id",), rows, ACCOUNTING_COLUMNS
            )
            gpu_summary = _merge_spilled(handles, "gpu_summary", ("job_id",), rows)
            per_gpu = _merge_spilled(
                handles, "per_gpu", ("job_id", "gpu_index"), rows
            )
            store = SpilledTimeSeriesStore(
                Path(handle["root"]) / "series" for handle in handles
            )
        else:
            gpu_summary = _merge_tables(
                [island["gpu_summary"] for island in islands], ("job_id",)
            )
            per_gpu = _merge_tables(
                [island["per_gpu"] for island in islands], ("job_id", "gpu_index")
            )
            store = TimeSeriesStore.merged(island["store"] for island in islands)
        probe.rows = per_gpu.num_rows

    with inst.stage("assemble") as probe:
        if streaming:
            jobs = jobs_stream
            gpu_jobs = jobs.filter(_keep_gpu_jobs).join_sorted(
                gpu_summary, on="job_id"
            )
            if per_gpu.num_rows:
                per_gpu = per_gpu.join_sorted(
                    jobs.select(CONTEXT_COLUMNS), on="job_id"
                )
        else:
            jobs = accounting_table(records)
            keep = (np.asarray(jobs["num_gpus"]) > 0) & (
                np.asarray(jobs["run_time_s"], dtype=float)
                >= PAPER_TARGETS.short_job_filter_s
            )
            gpu_jobs = jobs.filter(keep).join(gpu_summary, on="job_id")
            if per_gpu.num_rows:
                context = jobs.select(list(CONTEXT_COLUMNS))
                per_gpu = per_gpu.join(context, on="job_id")
        probe.rows = jobs.num_rows

    return SupercloudDataset(
        jobs=jobs,
        gpu_jobs=gpu_jobs,
        per_gpu=per_gpu,
        timeseries=store,
        records=records,
        spec=spec,
        config=config,
    )
