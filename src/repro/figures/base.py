"""Shared result types for figure reproductions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.frame import Table, TableBuilder


@dataclass(frozen=True)
class Comparison:
    """One paper-reported number next to its measured counterpart."""

    name: str
    paper: float
    measured: float
    unit: str = ""

    @property
    def ratio(self) -> float:
        """measured / paper.

        NaN when the ratio would be meaningless: a zero or non-finite
        paper value, or a non-finite measurement (an inf measurement
        must not masquerade as an honest ±inf ratio).
        """
        if self.paper == 0 or not math.isfinite(self.paper) or not math.isfinite(self.measured):
            return float("nan")
        return self.measured / self.paper

    def formatted(self) -> str:
        return (
            f"{self.name}: paper {self.paper:g}{self.unit}, "
            f"measured {self.measured:.3g}{self.unit}"
        )


@dataclass
class FigureResult:
    """Everything a figure reproduction produced."""

    figure_id: str
    title: str
    series: dict[str, Any] = field(default_factory=dict)
    comparisons: list[Comparison] = field(default_factory=list)
    notes: str = ""

    def comparison_table(self) -> Table:
        """Comparisons as a frame Table (for CSV export / printing)."""
        builder = TableBuilder(columns=["figure", "name", "paper", "measured", "unit"])
        for c in self.comparisons:
            builder.append_row(
                figure=self.figure_id,
                name=c.name,
                paper=c.paper,
                measured=round(c.measured, 4),
                unit=c.unit,
            )
        return builder.finish()

    def get(self, name: str) -> Comparison:
        """Look up one comparison by name."""
        for comparison in self.comparisons:
            if comparison.name == name:
                return comparison
        raise KeyError(f"no comparison named {name!r} in {self.figure_id}")

    def to_text(self) -> str:
        lines = [f"== {self.figure_id}: {self.title} =="]
        lines.extend("  " + c.formatted() for c in self.comparisons)
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)
