"""Mergeable one-pass summaries: quantile sketches and moments.

The paper presents nearly every result as an empirical CDF or a
percentile.  At full scale (448 GPUs x 125 days of 10 s samples) the
underlying series no longer fit in memory, so the streaming layer
(:mod:`repro.frame.chunked`) funnels them through the two summaries
here instead of materializing a sorted column:

* :class:`QuantileSketch` — a deterministic KLL-style compactor sketch
  answering rank/quantile/CDF queries with a *tracked* worst-case rank
  error.  It deliberately mirrors the query surface of
  :class:`repro.analysis.stats.Ecdf` (``values``/``probabilities``/
  ``evaluate``/``quantile``/``median``/``fraction_above``), so figure
  code written against an exact ECDF runs unchanged on a sketch.
* :class:`StreamingMoments` — count/sum/min/max/mean/std of one column
  in O(1) state.

Error contract
--------------
Every compaction of a weight-``w`` buffer shifts any rank query by at
most ``w``; the sketch sums those shifts as it goes, so
:meth:`QuantileSketch.rank_error_bound` is an *a-posteriori* guarantee,
not an asymptotic estimate: for every x,

    |true_rank(x) - sketch_rank(x)| <= rank_error_bound().

With capacity ``k`` the bound grows like ``n * log2(n / k) / k``
(about 1.3% of n for k=512 at n=1e6); while fewer than ``k`` samples
have been seen no compaction has happened and every query is **exact**
(bit-for-bit equal to the :class:`~repro.analysis.stats.Ecdf` built
from the same values).  Determinism: compaction keeps every other
element of the sorted buffer with an alternating start offset — no RNG
— so the same updates in the same order always produce the same
sketch, and ``merge`` of per-chunk sketches is associative in the
sense that any merge tree sees the same total weight and honors the
same tracked bound.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.errors import FrameError

__all__ = ["QuantileSketch", "StreamingMoments"]

#: Default compactor capacity: ~0.5%% worst-case rank error at 1e6
#: samples, ~100 KiB of state.
DEFAULT_SKETCH_K = 512


class QuantileSketch:
    """A mergeable, deterministic quantile/ECDF sketch.

    Values live in per-level buffers; level ``h`` items carry weight
    ``2**h``.  When a level outgrows ``k`` it is sorted and every other
    element (alternating offset, odd leftover stays behind) is promoted
    to the next level.  Non-finite updates are dropped, matching
    :func:`repro.analysis.stats.ecdf`.
    """

    __slots__ = (
        "_k",
        "_levels",
        "_sizes",
        "_flip",
        "_compactions",
        "_count",
        "_min",
        "_max",
        "_summary",
    )

    def __init__(self, k: int = DEFAULT_SKETCH_K) -> None:
        if k < 8:
            raise FrameError(f"sketch capacity k must be >= 8, got {k}")
        self._k = int(k)
        self._levels: list[list[np.ndarray]] = [[]]
        self._sizes: list[int] = [0]
        self._flip: list[bool] = [False]
        self._compactions: list[int] = [0]
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._summary: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def update(self, values: Iterable[Any]) -> "QuantileSketch":
        """Absorb a batch of values (non-finite entries are dropped)."""
        arr = np.asarray(values, dtype=float).ravel()
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            return self
        self._count += int(arr.size)
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        self._levels[0].append(arr)
        self._sizes[0] += int(arr.size)
        self._summary = None
        self._compress()
        return self

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch into this one (per-chunk partials)."""
        if other._count == 0:
            return self
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for level in range(len(other._levels)):
            if not other._sizes[level]:
                continue
            self._ensure_level(level)
            self._levels[level].extend(other._levels[level])
            self._sizes[level] += other._sizes[level]
        for level, events in enumerate(other._compactions):
            self._ensure_level(level)
            self._compactions[level] += events
        self._summary = None
        self._compress()
        return self

    def _ensure_level(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
            self._sizes.append(0)
            self._flip.append(False)
            self._compactions.append(0)

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            if self._sizes[level] > self._k:
                self._compact(level)
            level += 1

    def _compact(self, level: int) -> None:
        buf = (
            self._levels[level][0]
            if len(self._levels[level]) == 1
            else np.concatenate(self._levels[level])
        )
        buf = np.sort(buf)
        leftover: np.ndarray | None = None
        if buf.size % 2:
            # Odd count: the largest element stays behind at this level
            # so total weight is conserved exactly.
            leftover = buf[-1:]
            buf = buf[:-1]
        offset = 1 if self._flip[level] else 0
        self._flip[level] = not self._flip[level]
        survivors = buf[offset::2]
        self._levels[level] = [] if leftover is None else [leftover]
        self._sizes[level] = 0 if leftover is None else 1
        self._compactions[level] += 1
        self._ensure_level(level + 1)
        self._levels[level + 1].append(survivors)
        self._sizes[level + 1] += int(survivors.size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def num_samples(self) -> int:
        """Total (finite) samples absorbed."""
        return self._count

    def rank_error_bound(self) -> int:
        """Worst-case absolute rank error of any query, in samples.

        Tracked exactly: every compaction of a weight-``w`` level adds
        ``w``.  Zero while the sketch has never compacted (queries are
        then exact).
        """
        bound = sum(events << level for level, events in enumerate(self._compactions))
        return min(bound, self._count)

    def relative_rank_error(self) -> float:
        """``rank_error_bound`` as a fraction of the sample count."""
        if self._count == 0:
            return 0.0
        return self.rank_error_bound() / self._count

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(n={self._count}, k={self._k}, "
            f"levels={len(self._levels)}, err<={self.relative_rank_error():.3%})"
        )

    # ------------------------------------------------------------------
    # Queries (Ecdf-compatible surface)
    # ------------------------------------------------------------------
    def _materialized(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted summary values and their cumulative weights."""
        if self._summary is None:
            parts: list[np.ndarray] = []
            weights: list[np.ndarray] = []
            for level, bufs in enumerate(self._levels):
                if not self._sizes[level]:
                    continue
                v = bufs[0] if len(bufs) == 1 else np.concatenate(bufs)
                parts.append(v)
                weights.append(np.full(v.size, float(1 << level)))
            if not parts:
                empty = np.empty(0, dtype=float)
                self._summary = (empty, empty.copy())
            else:
                v = np.concatenate(parts)
                w = np.concatenate(weights)
                order = np.argsort(v, kind="stable")
                self._summary = (v[order], np.cumsum(w[order]))
        return self._summary

    @property
    def values(self) -> np.ndarray:
        """Summary values, sorted ascending (the CDF's x axis)."""
        return self._materialized()[0]

    @property
    def probabilities(self) -> np.ndarray:
        """Estimated P(sample <= value) at each summary value."""
        values, cumw = self._materialized()
        if values.size == 0:
            return values
        return cumw / float(self._count)

    def evaluate(self, x: float | np.ndarray) -> float | np.ndarray:
        """Estimated P(sample <= x)."""
        if self._count == 0:
            raise FrameError("cannot query an empty sketch")
        values, cumw = self._materialized()
        idx = np.searchsorted(values, np.asarray(x, dtype=float), side="right")
        padded = np.concatenate(([0.0], cumw))
        out = padded[idx] / float(self._count)
        if np.ndim(x) == 0:
            return float(out)
        return out

    def quantile(self, p: float) -> float:
        """Estimated inverse CDF at probability ``p``.

        Exact (``np.quantile`` bit-for-bit) while the sketch has never
        compacted; afterwards a weighted inverted-CDF lookup within the
        tracked rank-error bound.
        """
        if not 0.0 <= p <= 1.0:
            raise FrameError(f"probability {p} outside [0, 1]")
        if self._count == 0:
            raise FrameError("cannot query an empty sketch")
        values, cumw = self._materialized()
        if self.rank_error_bound() == 0:
            # All weight-1 samples present: defer to the exact kernel.
            return float(np.quantile(values, p))
        target = p * float(self._count)
        idx = int(np.searchsorted(cumw, target, side="left"))
        return float(values[min(idx, values.size - 1)])

    def median(self) -> float:
        return self.quantile(0.5)

    def fraction_above(self, threshold: float) -> float:
        """Estimated P(sample > threshold)."""
        return 1.0 - float(self.evaluate(threshold))

    def minimum(self) -> float:
        if self._count == 0:
            raise FrameError("cannot query an empty sketch")
        return self._min

    def maximum(self) -> float:
        if self._count == 0:
            raise FrameError("cannot query an empty sketch")
        return self._max


class StreamingMoments:
    """Constant-state count/sum/min/max/mean/std of one value stream.

    ``sum`` accumulates chunk partials (each partial computed with the
    same sequential ``add.reduceat`` kernel the group-by uses), so the
    result is deterministic for a fixed chunking but — like any
    out-of-core sum — not bit-identical to a single-pass materialized
    sum.  ``std`` uses the sum-of-squares identity with a clamp at
    zero; NaN inputs poison every statistic except ``count``.
    """

    __slots__ = ("count", "total", "total_sq", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, values: Iterable[Any]) -> "StreamingMoments":
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return self
        start = np.zeros(1, dtype=np.intp)
        self.count += int(arr.size)
        self.total += float(np.add.reduceat(arr, start)[0])
        self.total_sq += float(np.add.reduceat(arr * arr, start)[0])
        self.minimum = float(np.minimum(self.minimum, np.min(arr)))
        self.maximum = float(np.maximum(self.maximum, np.max(arr)))
        return self

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        self.minimum = float(np.minimum(self.minimum, other.minimum))
        self.maximum = float(np.maximum(self.maximum, other.maximum))
        return self

    def mean(self) -> float:
        if self.count == 0:
            raise FrameError("no samples accumulated")
        return self.total / self.count

    def std(self) -> float:
        """Population standard deviation via the sum-of-squares identity."""
        mean = self.mean()
        variance = self.total_sq / self.count - mean * mean
        if math.isnan(variance):
            return variance
        return math.sqrt(max(variance, 0.0))
