"""Opportunity study: fleet-level GPU sharing (Sec. III recommendation)."""

from repro.opportunities.sharing_sim import sharing_study


def test_fleet_sharing(benchmark, dataset):
    exclusive, shared = benchmark(sharing_study, dataset, None, 1000)
    # on a tight fleet, sharing reduces queueing
    assert shared.mean_wait_s <= exclusive.mean_wait_s
