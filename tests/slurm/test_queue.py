"""Tests for the pending-job queue."""

import pytest

from repro.errors import SchedulerError
from repro.slurm.queue import JobQueue
from tests.slurm.test_job import make_request


class TestQueueOrdering:
    def test_fcfs_within_priority(self):
        queue = JobQueue()
        queue.push(make_request(job_id=1, submit_time_s=0.0))
        queue.push(make_request(job_id=2, submit_time_s=1.0))
        assert queue.snapshot() == [1, 2]

    def test_priority_jumps_ahead(self):
        queue = JobQueue()
        queue.push(make_request(job_id=1, submit_time_s=0.0), priority=0.0)
        queue.push(make_request(job_id=2, submit_time_s=1.0), priority=10.0)
        assert queue.snapshot() == [2, 1]

    def test_tie_breaks_by_job_id(self):
        queue = JobQueue()
        queue.push(make_request(job_id=5, submit_time_s=0.0))
        queue.push(make_request(job_id=3, submit_time_s=0.0))
        assert queue.snapshot() == [3, 5]

    def test_len_and_bool(self):
        queue = JobQueue()
        assert not queue
        queue.push(make_request(job_id=1))
        assert len(queue) == 1 and queue


class TestBackfill:
    def test_scan_limited_to_depth(self):
        queue = JobQueue(backfill_depth=2)
        for i in range(5):
            queue.push(make_request(job_id=i, submit_time_s=float(i)))
        assert [r.job_id for r in queue.scan()] == [0, 1]

    def test_pop_first_placeable_skips_stuck_head(self):
        queue = JobQueue()
        queue.push(make_request(job_id=1, num_gpus=2, submit_time_s=0.0))
        queue.push(make_request(job_id=2, num_gpus=1, submit_time_s=1.0))
        popped = queue.pop_first_placeable(lambda r: r.num_gpus == 1)
        assert popped.job_id == 2
        assert queue.snapshot() == [1]

    def test_pop_first_placeable_none_when_nothing_fits(self):
        queue = JobQueue()
        queue.push(make_request(job_id=1))
        assert queue.pop_first_placeable(lambda r: False) is None
        assert len(queue) == 1

    def test_depth_bounds_backfill(self):
        queue = JobQueue(backfill_depth=1)
        queue.push(make_request(job_id=1, num_gpus=2, submit_time_s=0.0))
        queue.push(make_request(job_id=2, num_gpus=1, submit_time_s=1.0))
        # job 2 would fit, but it is outside the scan window
        assert queue.pop_first_placeable(lambda r: r.num_gpus == 1) is None

    def test_invalid_depth_rejected(self):
        with pytest.raises(SchedulerError):
            JobQueue(backfill_depth=0)


class TestRemoval:
    def test_remove_returns_request(self):
        queue = JobQueue()
        queue.push(make_request(job_id=9))
        request = queue.remove(9)
        assert request.job_id == 9
        assert not queue

    def test_remove_missing_rejected(self):
        with pytest.raises(SchedulerError, match="not in queue"):
            JobQueue().remove(1)
