"""Typed columnar accumulators: build a :class:`Table` without row dicts.

Hot producers (the monitoring epilog, the accounting export, group-by
outputs) used to stage ``list[dict]`` and pay for a dict per row plus a
per-column comprehension in ``Table.from_rows``.  A
:class:`TableBuilder` holds one Python list per column and appends
values directly; :meth:`finish` coerces each list through the normal
column rules exactly once.

Rows may be ragged: a value for a column the builder has not seen yet
backfills ``None`` for all earlier rows, and rows missing a known
column append ``None`` — the same union-of-keys semantics as
``Table.from_rows``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import FrameError, LengthMismatchError
from repro.frame.table import Table


class TableBuilder:
    """Accumulates columns and finishes into a :class:`Table`.

    Parameters
    ----------
    columns:
        Optional column names to declare up front.  Declared columns
        appear in the finished table (empty if never filled) and fix
        the leading column order.
    """

    def __init__(self, columns: Sequence[str] | None = None) -> None:
        self._data: dict[str, list[Any]] = {str(name): [] for name in (columns or [])}
        self._length = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._data)

    # ------------------------------------------------------------------
    def append_row(self, row: Mapping[str, Any] | None = None, **values: Any) -> None:
        """Append one row given as a mapping and/or keyword arguments."""
        merged = dict(row) if row else {}
        if values:
            merged.update(values)
        for name, value in merged.items():
            column = self._data.get(name)
            if column is None:
                column = self._data[name] = [None] * self._length
            column.append(value)
        if len(merged) < len(self._data):
            for name, column in self._data.items():
                if len(column) == self._length:
                    column.append(None)
        self._length += 1

    def extend_columns(self, columns: Mapping[str, Any]) -> None:
        """Append a batch of equal-length column fragments at once.

        ``columns`` maps names to sequences/arrays that must all share
        one length; columns of the builder missing from the batch get
        ``None`` backfill, new names get ``None`` for all prior rows.
        """
        if not columns:
            return
        batch: dict[str, list[Any]] = {}
        size: int | None = None
        for name, values in columns.items():
            if isinstance(values, np.ndarray):
                fragment = list(values)
            elif isinstance(values, (str, bytes)):
                raise FrameError(
                    "a single string is not a valid column fragment; wrap it in a list"
                )
            elif isinstance(values, Iterable):
                fragment = list(values)
            else:
                raise FrameError(
                    f"cannot extend column {name!r} from {type(values).__name__}"
                )
            if size is None:
                size = len(fragment)
            elif len(fragment) != size:
                raise LengthMismatchError(
                    f"column fragment {name!r} has length {len(fragment)}, expected {size}"
                )
            batch[str(name)] = fragment
        assert size is not None
        for name, fragment in batch.items():
            column = self._data.get(name)
            if column is None:
                column = self._data[name] = [None] * self._length
            column.extend(fragment)
        for name, column in self._data.items():
            if name not in batch:
                column.extend([None] * size)
        self._length += size

    def accumulator(self, name: str) -> list[Any]:
        """Direct handle on one column's list for hot append loops.

        Callers appending through accumulators must keep every column
        the same length themselves (``finish`` still validates) and
        must not mix accumulator appends with :meth:`append_row` /
        :meth:`extend_columns`, whose ``None`` backfill relies on the
        builder's own row count.
        """
        column = self._data.get(name)
        if column is None:
            column = self._data[str(name)] = [None] * self._length
        return column

    # ------------------------------------------------------------------
    def finish(self) -> Table:
        """Build the table (non-destructive: the builder stays usable)."""
        return Table(self._data)
