"""Fig 15: life-cycle class mix and GPU-hour footprint."""

from __future__ import annotations

from repro.analysis.lifecycle import lifecycle_breakdown
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult

PAPER_JOB_SHARES = {"mature": 0.60, "exploratory": 0.18, "development": 0.19, "ide": 0.035}
PAPER_HOUR_SHARES = {"mature": 0.39, "exploratory": 0.34, "development": 0.09, "ide": 0.18}


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 15(a): job shares per class; Fig 15(b): GPU-hour shares."""
    breakdown = lifecycle_breakdown(dataset.gpu_jobs)
    by_class = {
        str(row["lifecycle_class"]): row for row in breakdown.iter_rows()
    }
    comparisons = []
    for cls, paper in PAPER_JOB_SHARES.items():
        comparisons.append(
            Comparison(f"{cls} job share", paper, by_class[cls]["job_fraction"])
        )
    for cls, paper in PAPER_HOUR_SHARES.items():
        comparisons.append(
            Comparison(f"{cls} GPU-hour share", paper, by_class[cls]["gpu_hour_fraction"])
        )
    comparisons.append(
        Comparison(
            "median exploratory runtime", 62.0, by_class["exploratory"]["median_runtime_min"], " min"
        )
    )
    comparisons.append(
        Comparison("median mature runtime", 36.0, by_class["mature"]["median_runtime_min"], " min")
    )
    nonmature = 1.0 - by_class["mature"]["gpu_hour_fraction"]
    comparisons.append(Comparison("non-mature GPU-hour share", 0.61, nonmature))
    return FigureResult(
        figure_id="fig15",
        title="Development life-cycle mix and footprint",
        series={"breakdown": breakdown},
        comparisons=comparisons,
    )
