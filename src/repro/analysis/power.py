"""Power-consumption analysis and power-cap what-ifs (Fig 9).

Fig 9(b) asks: if every GPU were capped at ``L`` watts (to fund
over-provisioning at iso-power), which jobs would notice?

* **unimpacted** — the job's maximum draw never reaches the cap;
* **impacted (max)** — the max draw reaches the cap at some point
  (performance *might* suffer during peaks);
* **impacted (avg)** — even the average draw is at/above the cap
  (performance definitely suffers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.streaming import is_chunked
from repro.errors import AnalysisError
from repro.frame import QuantileSketch, StreamingMoments, Table

#: Cap levels studied by the paper (W).
DEFAULT_CAPS_W = (150.0, 200.0, 250.0)


@dataclass(frozen=True)
class PowerCapImpact:
    """Impact of one cap level on the job population."""

    cap_w: float
    unimpacted_fraction: float
    max_impacted_fraction: float
    avg_impacted_fraction: float

    def __post_init__(self) -> None:
        total = self.unimpacted_fraction + self.max_impacted_fraction
        if not 0.99 <= total <= 1.01:
            raise AnalysisError("unimpacted + max-impacted must cover all jobs")


def power_cap_impact(jobs: Table, caps_w=DEFAULT_CAPS_W) -> list[PowerCapImpact]:
    """Evaluate each cap level against the jobs' avg/max power draw.

    A chunked stream folds integer counts per cap level, so every
    fraction is bit-identical to the materialized ``mask.mean()``.
    """
    for cap in caps_w:
        if cap <= 0:
            raise AnalysisError(f"cap must be positive, got {cap}")
    if is_chunked(jobs):
        total = 0
        below = [0] * len(caps_w)
        avg_above = [0] * len(caps_w)
        for chunk in jobs.chunks():
            avg = np.asarray(chunk["power_w_mean"], dtype=float)
            peak = np.asarray(chunk["power_w_max"], dtype=float)
            total += peak.size
            for i, cap in enumerate(caps_w):
                below[i] += int((peak < cap).sum())
                avg_above[i] += int((avg >= cap).sum())
        if total == 0:
            raise AnalysisError("no jobs to analyse")
        return [
            PowerCapImpact(
                cap_w=float(cap),
                unimpacted_fraction=below[i] / total,
                max_impacted_fraction=(total - below[i]) / total,
                avg_impacted_fraction=avg_above[i] / total,
            )
            for i, cap in enumerate(caps_w)
        ]
    if jobs.num_rows == 0:
        raise AnalysisError("no jobs to analyse")
    avg = np.asarray(jobs["power_w_mean"], dtype=float)
    peak = np.asarray(jobs["power_w_max"], dtype=float)
    out = []
    for cap in caps_w:
        out.append(
            PowerCapImpact(
                cap_w=float(cap),
                unimpacted_fraction=float((peak < cap).mean()),
                max_impacted_fraction=float((peak >= cap).mean()),
                avg_impacted_fraction=float((avg >= cap).mean()),
            )
        )
    return out


@dataclass(frozen=True)
class PowerHeadroom:
    """How much provisioned GPU power goes unused (Sec. III takeaway)."""

    board_power_w: float
    median_avg_power_w: float
    median_max_power_w: float
    mean_avg_power_w: float
    #: GPUs supportable at iso-power if capped at half board power.
    overprovision_factor_at_half_cap: float


def power_headroom(jobs: Table, board_power_w: float = 300.0) -> PowerHeadroom:
    """Summarise the population's power headroom.

    A chunked stream sketches the two medians (rank-bounded) and folds
    the mean through :class:`~repro.frame.StreamingMoments`.
    """
    if is_chunked(jobs):
        avg_sketch, peak_sketch = QuantileSketch(), QuantileSketch()
        avg_moments = StreamingMoments()
        for chunk in jobs.chunks():
            avg = np.asarray(chunk["power_w_mean"], dtype=float)
            avg_sketch.update(avg)
            avg_moments.update(avg)
            peak_sketch.update(np.asarray(chunk["power_w_max"], dtype=float))
        if avg_moments.count == 0:
            raise AnalysisError("no jobs to analyse")
        return PowerHeadroom(
            board_power_w=board_power_w,
            median_avg_power_w=avg_sketch.quantile(0.5),
            median_max_power_w=peak_sketch.quantile(0.5),
            mean_avg_power_w=avg_moments.mean(),
            overprovision_factor_at_half_cap=board_power_w / (board_power_w / 2.0),
        )
    if jobs.num_rows == 0:
        raise AnalysisError("no jobs to analyse")
    avg = np.asarray(jobs["power_w_mean"], dtype=float)
    peak = np.asarray(jobs["power_w_max"], dtype=float)
    return PowerHeadroom(
        board_power_w=board_power_w,
        median_avg_power_w=float(np.median(avg)),
        median_max_power_w=float(np.median(peak)),
        mean_avg_power_w=float(avg.mean()),
        overprovision_factor_at_half_cap=board_power_w / (board_power_w / 2.0),
    )
