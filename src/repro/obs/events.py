"""The flight recorder — a bounded structured event log for live runs.

Spans and metrics answer *how long* and *how much*; the flight
recorder answers *what just happened*.  It is a bounded ring of
structured :class:`EventRecord` entries fed by the instrumented
layers — span closes, pipeline stage transitions, cache hits and
misses, island epoch boundaries, spill and merge operations — each
stamped with wall-clock **and** monotonic time, the recording pid, and
the island that produced it.  Because the ring is bounded, leaving the
recorder enabled for a multi-hour sharded build costs a fixed amount
of memory: old events fall off the back (optionally spilling to a
JSONL file first), recent history is always queryable.

The recorder follows the same three contracts as the tracer and the
metrics registry (:mod:`repro.obs.trace` / :mod:`repro.obs.metrics`):

* **a true no-op fast path** — :data:`NULL_RECORDER` makes ``emit``
  one method call with no allocation, so instrumented code calls
  :func:`repro.obs.runtime.record_event` unconditionally;
* **thread safety** — emission appends under a lock; the ring is
  shared across threads;
* **cross-process merging** — a worker recorder serialises its events
  to plain dicts (:meth:`FlightRecorder.drain_payload`) and the parent
  folds them in (:meth:`FlightRecorder.adopt`), preserving the worker
  pid and island id and re-sorting on the wall clock so the merged log
  reads as one timeline.

JSONL is the durable form: :meth:`FlightRecorder.write_jsonl` drains
(or copies) the ring to one JSON object per line, and
:func:`read_jsonl` loads it back — the ``--events-out`` CLI flag and
the overflow spill both use it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

#: Default ring capacity: enough for every epoch of a 10x build plus
#: the stage/cache/spill traffic around it, at a few MB of memory.
DEFAULT_CAPACITY = 8192


@dataclass(frozen=True)
class EventRecord:
    """One recorded event."""

    name: str
    category: str
    #: Wall-clock microseconds (same epoch anchor as span timestamps).
    wall_us: int
    #: Monotonic nanoseconds (``time.monotonic_ns``): orders events
    #: within one process even if the wall clock steps.
    mono_ns: int
    pid: int
    #: Island that produced the event; ``None`` outside sharded runs.
    island: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        """A plain-dict form that pickles/JSONs across processes."""
        return {
            "name": self.name,
            "cat": self.category,
            "wall_us": self.wall_us,
            "mono_ns": self.mono_ns,
            "pid": self.pid,
            "island": self.island,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "EventRecord":
        island = payload.get("island")
        return cls(
            name=str(payload["name"]),
            category=str(payload.get("cat", "repro")),
            wall_us=int(payload["wall_us"]),
            mono_ns=int(payload.get("mono_ns", 0)),
            pid=int(payload.get("pid", 0)),
            island=None if island is None else int(island),
            attrs=dict(payload.get("attrs", {})),
        )


class NullRecorder:
    """The disabled recorder: every call is a cheap no-op."""

    __slots__ = ()
    enabled = False
    island = None

    def emit(self, name: str, category: str = "repro", **attrs: Any) -> None:
        pass

    def span_closed(self, record) -> None:
        pass

    def events(self) -> list[EventRecord]:
        return []

    def drain_payload(self) -> list[dict[str, Any]]:
        return []

    def adopt(self, payload: Iterable[Mapping[str, Any]]) -> int:
        return 0

    def __len__(self) -> int:
        return 0


NULL_RECORDER = NullRecorder()

# Wall-clock anchor shared with span timestamps (see repro.obs.trace).
from repro.obs.trace import _now_us  # noqa: E402  (intentional late import)


class FlightRecorder:
    """A bounded, thread-safe ring of structured events.

    Parameters
    ----------
    capacity:
        Maximum events held in memory.  The ring never grows past it.
    island:
        Island id stamped on every event this recorder emits (worker
        recorders in sharded builds set it; the parent leaves it
        ``None``).
    spill_path:
        Optional JSONL file.  When the ring is full, the event evicted
        to make room is appended there instead of being lost — the
        in-memory ring stays recent history, the file keeps the rest.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        island: int | None = None,
        spill_path: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.island = island
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self.dropped = 0
        self.spilled = 0
        self._ring: deque[EventRecord] = deque()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, name: str, category: str = "repro", **attrs: Any) -> None:
        """Record one event, stamped now, on this recorder's island."""
        island = attrs.pop("island", self.island)
        record = EventRecord(
            name=name,
            category=category,
            wall_us=_now_us(),
            mono_ns=time.monotonic_ns(),
            pid=os.getpid(),
            island=island,
            attrs=attrs,
        )
        with self._lock:
            if len(self._ring) >= self.capacity:
                evicted = self._ring.popleft()
                self._evict(evicted)
            self._ring.append(record)

    def span_closed(self, record) -> None:
        """Tracer listener: mirror one finished span into the log.

        Wired by sessions (``tracer.listener = recorder.span_closed``)
        so every span close lands in the flight recorder too, with the
        span's duration and attributes.
        """
        self.emit(
            f"span:{record.name}",
            category=record.category,
            duration_us=record.duration_us,
            **record.attrs,
        )

    def _evict(self, record: EventRecord) -> None:
        """Handle one event falling off the back of the ring."""
        if self.spill_path is None:
            self.dropped += 1
            return
        try:
            with self.spill_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record.to_payload(), default=str) + "\n")
            self.spilled += 1
        except OSError:
            # A broken spill file must never fail the instrumented run.
            self.dropped += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def events(self) -> list[EventRecord]:
        """The in-memory events, oldest first."""
        with self._lock:
            return list(self._ring)

    def tail(self, count: int = 20) -> list[EventRecord]:
        """The most recent ``count`` events, oldest first."""
        with self._lock:
            if count >= len(self._ring):
                return list(self._ring)
            return list(self._ring)[-count:]

    # ------------------------------------------------------------------
    # Cross-process propagation
    # ------------------------------------------------------------------
    def drain_payload(self) -> list[dict[str, Any]]:
        """Export the ring as plain dicts and clear it (worker hand-off)."""
        with self._lock:
            drained, self._ring = self._ring, deque()
        return [record.to_payload() for record in drained]

    def adopt(self, payload: Iterable[Mapping[str, Any]]) -> int:
        """Fold events exported by another recorder into this ring.

        Worker pid and island stamps are preserved; the merged ring is
        re-sorted on the wall clock (stable, so same-timestamp events
        keep arrival order) and re-bounded to ``capacity``.  Returns
        the number of events adopted.
        """
        records = [EventRecord.from_payload(p) for p in payload]
        if not records:
            return 0
        with self._lock:
            merged = sorted(
                list(self._ring) + records, key=lambda record: record.wall_us
            )
            while len(merged) > self.capacity:
                self._evict(merged.pop(0))
            self._ring = deque(merged)
        return len(records)

    # ------------------------------------------------------------------
    # JSONL
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str | Path, *, drain: bool = False) -> Path:
        """Write the in-memory events to ``path``, one JSON per line.

        With ``drain=True`` the ring is cleared afterwards (the JSONL
        file becomes the single copy).  Appends, so a ring that has
        been spilling evictions to the same file stays in order.
        """
        path = Path(path)
        records = self.drain_payload() if drain else [
            record.to_payload() for record in self.events()
        ]
        with path.open("a", encoding="utf-8") as handle:
            for payload in records:
                handle.write(json.dumps(payload, default=str) + "\n")
        return path


def read_jsonl(path: str | Path) -> Iterator[EventRecord]:
    """Load events back from a JSONL file written by the recorder."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield EventRecord.from_payload(json.loads(line))


def summarize_events(events: Iterable[EventRecord]) -> str:
    """Condense an event stream into terminal text (counts by name)."""
    events = list(events)
    if not events:
        return "flight recorder: no events"
    by_name: dict[tuple[str, str], int] = {}
    islands: set[int] = set()
    for event in events:
        key = (event.category, event.name)
        by_name[key] = by_name.get(key, 0) + 1
        if event.island is not None:
            islands.add(event.island)
    first = min(event.wall_us for event in events)
    last = max(event.wall_us for event in events)
    lines = [
        f"{len(events)} events across {len({e.pid for e in events})} "
        f"process(es)"
        + (f", {len(islands)} island(s)" if islands else "")
        + f", {(last - first) / 1e6:.3f} s of timeline"
    ]
    ranked = sorted(by_name.items(), key=lambda kv: kv[1], reverse=True)
    for (category, name), count in ranked[:20]:
        lines.append(f"  {category:>10s}  {name:<36s} x{count}")
    if len(ranked) > 20:
        lines.append(f"  ... {len(ranked) - 20} more event names")
    return "\n".join(lines)
