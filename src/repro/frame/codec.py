"""Per-column codecs for the chunked-table spill format.

The paper's operators flagged monitoring volume and file-system load as
a first-order cost (42 GB of telemetry for 2,149 jobs); the spill layer
is our equivalent write path, so its bytes are the ones worth shaving.
This module encodes each spilled column independently with the cheapest
scheme that round-trips it exactly:

* integers — delta + run-length encoding (job ids and day indexes are
  sorted or near-constant, so the deltas collapse into a few runs);
* floats — run-length encoding of the exact values (gated telemetry
  dwells at 0.0 through idle phases) when runs win, raw otherwise;
* object columns — dictionary encoding (uniques + int32 codes), with
  the code stream run-length encoded when it helps;
* opt-in lossy floats — quantise to :data:`QUANT_STEP` steps, then
  delta + RLE, exactly the transform :mod:`repro.monitor.codec` applies
  to dense series.  Maximum absolute error ``QUANT_STEP / 2``; never
  applied unless the caller names the column in
  :class:`SpillCodec.quantise`.

Exactness contract: every scheme except ``quant`` reconstructs the
column with identical dtype and element-wise equal values (NaNs map to
NaNs; integer delta arithmetic wraps modularly in the source dtype, so
round-trips are exact even at dtype boundaries).  The scheme choice is
adaptive per column — when an encoding would not shrink the column it
falls back to ``raw`` — so pathological inputs (all-distinct codes,
run-free floats) never blow up the file.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.errors import FrameError

__all__ = [
    "QUANT_STEP",
    "SpillCodec",
    "LOSSLESS",
    "rle_encode",
    "rle_decode",
    "encode_column",
    "decode_column",
    "column_raw_bytes",
]

#: Quantisation step for opt-in lossy float columns (percent, or watts
#: for power) — matches :data:`repro.monitor.codec.QUANT_STEP`.
QUANT_STEP = 0.5

#: Run-length bookkeeping per run: one value plus one int64 length.
_LENGTH_BYTES = 8


@dataclass(frozen=True)
class SpillCodec:
    """Spill-encoding policy for one table stream.

    ``quantise`` names float columns that may be stored lossily
    (quantised to :data:`QUANT_STEP` steps, max error ``QUANT_STEP/2``).
    It defaults to empty: the default codec is fully lossless and the
    decoded chunks are bit-identical to the originals.
    """

    quantise: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "quantise", tuple(self.quantise))

    def scheme_for(self, name: str, values: np.ndarray) -> tuple[str, dict]:
        """Encode one named column under this policy."""
        return encode_column(
            values, quantise=name in self.quantise
        )


#: The default policy: every column round-trips exactly.
LOSSLESS = SpillCodec()


def rle_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode: ``(run values, run lengths)``.

    Works for any comparable dtype.  For floats, NaN never compares
    equal to its neighbour, so each NaN sample becomes its own run —
    wasteful but exact.
    """
    if values.size == 0:
        return np.empty(0, dtype=values.dtype), np.empty(0, dtype=np.int64)
    if values.dtype == object:
        same = np.fromiter(
            (values[i] == values[i + 1] for i in range(values.size - 1)),
            dtype=bool,
            count=max(values.size - 1, 0),
        )
        change = np.nonzero(~same)[0]
    else:
        change = np.nonzero(values[1:] != values[:-1])[0]
    starts = np.concatenate(([0], change + 1))
    lengths = np.diff(np.concatenate((starts, [values.size])))
    return values[starts], lengths


def rle_decode(run_values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Invert :func:`rle_encode`."""
    if run_values.shape != run_lengths.shape:
        raise FrameError("corrupt run-length payload: values/lengths mismatch")
    if run_values.size == 0:
        return np.empty(0, dtype=run_values.dtype)
    return np.repeat(run_values, run_lengths)


def column_raw_bytes(values: np.ndarray) -> int:
    """Bytes the legacy (uncodec'd) spill format writes for a column.

    Numeric columns land as raw buffers; object columns go through
    pickle, so their footprint is the pickled size.
    """
    values = np.asarray(values)
    if values.dtype == object:
        return len(pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL))
    return values.nbytes


def _encoded_bytes(arrays: dict[str, np.ndarray]) -> int:
    return sum(column_raw_bytes(a) for a in arrays.values())


def encode_column(values: np.ndarray, *, quantise: bool = False) -> tuple[str, dict]:
    """Encode one column; returns ``(scheme_tag, arrays)``.

    ``arrays`` maps suffix → ndarray (the npz member names are built by
    the caller as ``c{i}_{suffix}``).  Scheme tags:

    ``raw``                  — ``{"": values}`` unchanged
    ``rle``                  — ``{"v": run values, "l": run lengths}``
    ``delta:<dtype>``        — integer deltas (modular, in ``<dtype>``), RLE'd
    ``dict`` / ``dict+rle``  — ``{"u": uniques, "v": codes[, "l": lengths]}``
    ``quant``                — quantised int64 levels, delta + RLE (lossy)
    """
    values = np.asarray(values)
    raw = ("raw", {"": values})
    if values.size == 0:
        return raw
    kind = values.dtype.kind
    if values.dtype == object:
        return _encode_object(values)
    if quantise and kind == "f":
        if np.isfinite(values).all():
            levels = np.round(values / QUANT_STEP).astype(np.int64)
            deltas = np.diff(levels, prepend=np.int64(0))
            run_values, run_lengths = rle_encode(deltas)
            return "quant", {"v": run_values, "l": run_lengths}
        # non-finite samples cannot be quantised; fall through lossless
    if kind in "iu":
        deltas = np.diff(values, prepend=values.dtype.type(0))
        run_values, run_lengths = rle_encode(deltas)
        encoded = {"v": run_values, "l": run_lengths}
        if _encoded_bytes(encoded) < values.nbytes:
            return f"delta:{values.dtype.str}", encoded
        return raw
    if kind in "bf":
        run_values, run_lengths = rle_encode(values)
        encoded = {"v": run_values, "l": run_lengths}
        if _encoded_bytes(encoded) < values.nbytes:
            return "rle", encoded
        return raw
    return raw


def _encode_object(values: np.ndarray) -> tuple[str, dict]:
    seen: dict = {}
    codes = np.empty(values.size, dtype=np.int32)
    for i, value in enumerate(values):
        code = seen.get(value)
        if code is None:
            code = len(seen)
            seen[value] = code
        codes[i] = code
    if len(seen) >= values.size:
        # all-distinct: the dictionary IS the column; raw pickles once
        return "raw", {"": values}
    uniques = np.empty(len(seen), dtype=object)
    for value, code in seen.items():
        uniques[code] = value
    run_values, run_lengths = rle_encode(codes)
    if run_values.nbytes + run_lengths.nbytes < codes.nbytes:
        return "dict+rle", {"u": uniques, "v": run_values, "l": run_lengths}
    return "dict", {"u": uniques, "v": codes}


def decode_column(scheme: str, arrays: dict[str, np.ndarray]) -> np.ndarray:
    """Invert :func:`encode_column` for one column."""
    if scheme == "raw":
        return arrays[""]
    if scheme == "rle":
        return rle_decode(arrays["v"], arrays["l"])
    if scheme.startswith("delta:"):
        dtype = np.dtype(scheme.split(":", 1)[1])
        deltas = rle_decode(arrays["v"], arrays["l"])
        return np.cumsum(deltas, dtype=dtype).astype(dtype, copy=False)
    if scheme == "dict":
        return arrays["u"][arrays["v"]]
    if scheme == "dict+rle":
        codes = rle_decode(arrays["v"], arrays["l"])
        return arrays["u"][codes]
    if scheme == "quant":
        deltas = rle_decode(arrays["v"], arrays["l"])
        return np.cumsum(deltas).astype(float) * QUANT_STEP
    raise FrameError(f"unknown spill codec scheme {scheme!r}")
