"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``  — generate the dataset and write it to CSV files.
``figure``    — reproduce one figure and print paper-vs-measured rows.
``report``    — run every figure and write EXPERIMENTS-style markdown.
``plot``      — render figures as SVG charts.
``opportunities`` — run the Sec. VI/VIII what-if studies.
``summary``   — operator-facing text report with ASCII charts.
``validate``  — grade the dataset against the paper's statistics.

Every command accepts ``--scale`` (1.0 = paper size), ``--seed``,
``--days``, and ``--scenario`` (paper, training_heavy,
exploration_surge, interactive_campus).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as _np

from repro.dataset import generate_dataset
from repro.frame import write_csv


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.1, help="dataset scale (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=20220214, help="generation seed")
    parser.add_argument("--days", type=float, default=125.0, help="study duration in days")
    parser.add_argument(
        "--scenario",
        default="paper",
        help="workload scenario (paper, training_heavy, exploration_surge, interactive_campus)",
    )


def _build_dataset(args: argparse.Namespace):
    from repro.workload.scenarios import make_scenario

    config = make_scenario(args.scenario, scale=args.scale, seed=args.seed)
    if args.days != config.days:
        import dataclasses

        config = dataclasses.replace(config, days=args.days)
    return generate_dataset(config)


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    write_csv(dataset.jobs, out / "jobs.csv")
    write_csv(dataset.gpu_jobs, out / "gpu_jobs.csv")
    write_csv(dataset.per_gpu, out / "per_gpu.csv")
    print(dataset.describe())
    print(f"wrote jobs.csv, gpu_jobs.csv, per_gpu.csv to {out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.figures.registry import run_figure

    dataset = _build_dataset(args)
    result = run_figure(args.figure_id, dataset)
    print(result.to_text())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.figures.report import write_report

    dataset = _build_dataset(args)
    path = write_report(dataset, args.output)
    print(f"wrote {path} ({dataset.describe()})")
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from repro.figures.plots import plottable_figures, save_figure_plots
    from repro.figures.registry import run_figure

    dataset = _build_dataset(args)
    figure_ids = plottable_figures() if args.figure_id == "all" else [args.figure_id]
    written = []
    for figure_id in figure_ids:
        result = run_figure(figure_id, dataset)
        written.extend(save_figure_plots(result, args.output))
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_opportunities(args: argparse.Namespace) -> int:
    from repro.opportunities.checkpoint import checkpoint_study
    from repro.opportunities.colocation import colocation_study
    from repro.opportunities.powercap import powercap_study
    from repro.opportunities.tiering import tiering_study

    dataset = _build_dataset(args)
    colo = colocation_study(dataset)
    print(
        f"co-location: {colo.num_pairs} pairs of {colo.num_jobs} jobs, "
        f"{colo.gpu_savings_fraction:.0%} GPUs saved, mean slowdown {colo.mean_slowdown:.3f}"
    )
    tier = tiering_study(dataset.gpu_jobs)
    print(
        f"two-tier fleet: {tier.cost_saving_fraction:.0%} cost saving routing "
        f"{tier.routed_job_fraction:.0%} of jobs (slowdown {tier.mean_slowdown_routed:.2f}x)"
    )
    power = powercap_study(dataset.gpu_jobs)
    print("power capping:")
    print(power.to_string())
    ckpt = checkpoint_study(dataset.gpu_jobs)
    print(
        f"checkpointing: {ckpt.lossy_job_fraction:.0%} of jobs lose state; "
        f"net saving {ckpt.net_saving_gpu_hours:.0f} GPU-hours at "
        f"{ckpt.model.interval_s:.0f}s intervals"
    )
    from repro.opportunities.mig import best_partition

    mig = best_partition(dataset.gpu_jobs, sizing="mean")
    print(
        f"MIG: best static partition {'+'.join(mig.partition)} packs "
        f"{mig.capacity_multiplier:.1f} jobs per GPU "
        f"({mig.fraction_fitting:.0%} of jobs fit a slice)"
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.reporting import operator_summary

    print(operator_summary(_build_dataset(args)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import pass_fraction, scorecard, validate_dataset

    results = validate_dataset(_build_dataset(args))
    table = scorecard(results)
    failed = table.filter(lambda t: ~_np.asarray(t["passed"], dtype=bool))
    if failed.num_rows:
        print("failed checks:")
        print(failed.to_string(max_rows=60))
    fraction = pass_fraction(results)
    print(f"\n{sum(r.passed for r in results)}/{len(results)} checks passed "
          f"({fraction:.0%}; threshold {args.min_pass:.0%})")
    return 0 if fraction >= args.min_pass else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="supercloud-repro",
        description="Reproduction of the HPCA'22 MIT Supercloud characterization study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate the dataset as CSV files")
    _add_dataset_args(generate)
    generate.add_argument("--output", default="dataset", help="output directory")
    generate.set_defaults(fn=_cmd_generate)

    figure = sub.add_parser("figure", help="reproduce one figure")
    _add_dataset_args(figure)
    figure.add_argument("figure_id", help="e.g. fig04, table1, pareto")
    figure.set_defaults(fn=_cmd_figure)

    report = sub.add_parser("report", help="run every figure, write markdown")
    _add_dataset_args(report)
    report.add_argument("--output", default="EXPERIMENTS.md", help="output file")
    report.set_defaults(fn=_cmd_report)

    opportunities = sub.add_parser("opportunities", help="run the Sec. VI/VIII studies")
    _add_dataset_args(opportunities)
    opportunities.set_defaults(fn=_cmd_opportunities)

    plot = sub.add_parser("plot", help="render figures as SVG charts")
    _add_dataset_args(plot)
    plot.add_argument("figure_id", help="figure id or 'all'")
    plot.add_argument("--output", default="plots", help="output directory")
    plot.set_defaults(fn=_cmd_plot)

    summary = sub.add_parser("summary", help="operator-facing text summary")
    _add_dataset_args(summary)
    summary.set_defaults(fn=_cmd_summary)

    validate = sub.add_parser("validate", help="grade the dataset against the paper")
    _add_dataset_args(validate)
    validate.add_argument("--min-pass", type=float, default=0.85,
                          help="exit non-zero below this pass fraction")
    validate.set_defaults(fn=_cmd_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
