"""Fig 14: cross-GPU variability of multi-GPU jobs."""

from repro.figures.registry import run_figure


def test_fig14_cross_gpu_cov(benchmark, dataset):
    result = benchmark(run_figure, "fig14", dataset)
    # shape: removing idle GPUs collapses the cross-GPU CoV
    assert result.get("active-only SM CoV median (low)").measured < 0.3
