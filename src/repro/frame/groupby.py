"""Group-by support for :class:`repro.frame.Table`.

The paper's pipeline aggregates jobs by user, by GPU count, by
interface type, and by life-cycle class.  :class:`GroupBy` supports
iteration over groups and a vectorised ``aggregate`` that applies named
reducers to columns.

Execution model
---------------
Keys are factorized once (:mod:`repro.frame.factorize`): every row gets
an integer group code in first-seen order, and one stable sort of the
codes turns the table into contiguous per-group segments.  From there:

* ``sizes`` and the ``count`` reducer are segment-length differences;
* ``min``/``max``/``sum`` run as ``np.{minimum,maximum,add}.reduceat``
  over the sorted value column; ``mean``/``std`` derive from those;
* ``first``/``last`` fancy-index the segment boundaries;
* ``median`` sorts values within segments via one ``lexsort`` and
  averages the two middle elements per segment.

So that the vectorized kernels stay **bit-for-bit identical** to the
row-at-a-time reference path (:mod:`repro.frame.reference`), the
builtin accumulation reducers are defined with *sequential* left-to-
right summation (a single-segment ``np.add.reduceat``) rather than
``np.sum``'s pairwise summation — ``reduceat`` reduces each segment
sequentially, so defining the scalar reducer the same way makes "one
group at a time" and "all groups at once" agree to the last ULP.  The
property tests assert exactly that.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame.factorize import Factorization, factorize_columns
from repro.frame.table import Table, _unwrap
from repro.obs.runtime import record_kernel

Reducer = Callable[[np.ndarray], Any]

_SEGMENT_START = np.zeros(1, dtype=np.intp)


def _seq_sum(values: np.ndarray) -> float:
    """Sequential left-to-right sum — the scalar twin of ``add.reduceat``."""
    if len(values) == 0:
        return 0.0
    return float(np.add.reduceat(values, _SEGMENT_START)[0])


def _seq_mean(a: np.ndarray) -> float:
    floats = a.astype(float)
    return _seq_sum(floats) / len(floats)


def _seq_std(a: np.ndarray) -> float:
    floats = a.astype(float)
    mean = _seq_sum(floats) / len(floats)
    centered = floats - mean
    return float(np.sqrt(_seq_sum(centered * centered) / len(floats)))


_BUILTIN_REDUCERS: dict[str, Reducer] = {
    "mean": _seq_mean,
    "sum": lambda a: _seq_sum(a.astype(float)),
    "min": lambda a: float(np.min(a.astype(float))),
    "max": lambda a: float(np.max(a.astype(float))),
    "median": lambda a: float(np.median(a.astype(float))),
    "std": _seq_std,
    "count": lambda a: int(len(a)),
    "first": lambda a: _unwrap(a[0]),
    "last": lambda a: _unwrap(a[-1]),
}


class GroupBy:
    """Grouping of a table by one or more key columns.

    Group order is first-seen order of the key; row order within a
    group is the table's row order (the factorization sort is stable).
    """

    def __init__(self, table: Table, keys: Sequence[str]) -> None:
        if not keys:
            raise FrameError("group_by requires at least one key column")
        self._table = table
        self._keys = tuple(keys)
        self._fact: Factorization = factorize_columns(
            [table.column(k) for k in self._keys]
        )
        self._key_tuples: list[tuple[Any, ...]] | None = None
        self._lookup: dict[tuple[Any, ...], int] | None = None

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return self._fact.num_groups

    def keys(self) -> list[tuple[Any, ...]]:
        """Group keys in first-seen order."""
        if self._key_tuples is None:
            reps = [
                self._table.column(k)[self._fact.first_rows] for k in self._keys
            ]
            self._key_tuples = [
                tuple(_unwrap(col[g]) for col in reps)
                for g in range(self._fact.num_groups)
            ]
        return list(self._key_tuples)

    def _group_rows(self, group: int) -> np.ndarray:
        f = self._fact
        return f.order[f.starts[group] : f.starts[group + 1]]

    def __iter__(self) -> Iterator[tuple[tuple[Any, ...], Table]]:
        for group, key in enumerate(self.keys()):
            yield key, self._table.take(self._group_rows(group))

    def group(self, *key: Any) -> Table:
        """Return the sub-table for one group key."""
        if self._lookup is None:
            self._lookup = {k: g for g, k in enumerate(self.keys())}
        k = tuple(key)
        group = self._lookup.get(k)
        if group is None:
            raise FrameError(f"no group with key {k!r}")
        return self._table.take(self._group_rows(group))

    def _key_columns(self) -> dict[str, np.ndarray]:
        """Key columns of the output table, one row per group."""
        return {
            name: self._table.column(name)[self._fact.first_rows]
            for name in self._keys
        }

    def sizes(self) -> Table:
        """Return a table of group keys and their row counts."""
        if self._fact.num_groups == 0:
            return Table.from_rows([])
        data = self._key_columns()
        data["count"] = self._fact.sizes.astype(np.int64, copy=False)
        return Table(data)

    # ------------------------------------------------------------------
    def aggregate(self, spec: Mapping[str, Sequence[str] | str]) -> Table:
        """Aggregate columns per group.

        ``spec`` maps a column name to one reducer name or a list of
        reducer names (``mean``/``sum``/``min``/``max``/``median``/
        ``std``/``count``/``first``/``last``).  The result has one row
        per group with columns ``{column}_{reducer}``.
        """
        record_kernel("aggregate", self._table.num_rows)
        normalized: list[tuple[str, str]] = []
        for column, reducers in spec.items():
            if isinstance(reducers, str):
                reducers = [reducers]
            for name in reducers:
                if name not in _BUILTIN_REDUCERS:
                    raise FrameError(
                        f"unknown reducer {name!r}; choose from {sorted(_BUILTIN_REDUCERS)}"
                    )
                normalized.append((column, name))

        if self._fact.num_groups == 0:
            return Table.from_rows([])
        data = self._key_columns()
        sorted_cache: dict[str, np.ndarray] = {}
        for column, name in normalized:
            values = sorted_cache.get(column)
            if values is None:
                values = sorted_cache[column] = self._table.column(column)[
                    self._fact.order
                ]
            data[f"{column}_{name}"] = _reduce_segments(values, self._fact, name)
        return Table(data)

    def apply(self, fn: Callable[[Table], Mapping[str, Any]]) -> Table:
        """Apply ``fn`` to each group's sub-table; collect dict results."""
        from repro.frame.builder import TableBuilder

        if self._fact.num_groups == 0:
            return Table.from_rows([])
        builder = TableBuilder(columns=self._keys)
        for key, sub in self:
            row: dict[str, Any] = dict(zip(self._keys, key))
            row.update(fn(sub))
            builder.append_row(row)
        return builder.finish()

    def mean(self, column: str) -> Table:
        """Shorthand for ``aggregate({column: "mean"})``."""
        return self.aggregate({column: "mean"})

    def sum(self, column: str) -> Table:
        """Shorthand for ``aggregate({column: "sum"})``."""
        return self.aggregate({column: "sum"})


# ----------------------------------------------------------------------
# Streaming (chunk-at-a-time) aggregation
# ----------------------------------------------------------------------
#: Reducers with a mergeable partial state.  ``median`` is the one
#: builtin without one — it needs the whole group (materialize, or use
#: a :class:`repro.frame.sketch.QuantileSketch`).
STREAMABLE_REDUCERS = ("sum", "count", "mean", "min", "max", "std", "first", "last")

#: Streamable reducers whose chunked result is bit-for-bit identical to
#: the materialized kernel regardless of chunking.  ``sum``/``mean``/
#: ``std`` accumulate float partials instead (deterministic for a fixed
#: chunking, exact when the addends are exactly representable; see
#: docs/performance.md for the full contract).
EXACT_STREAMING_REDUCERS = ("count", "min", "max", "first", "last")


class StreamingAggregateState:
    """Mergeable partial-aggregate state for a chunked group-by.

    Feed chunks with :meth:`update`; combine parallel partials with
    :meth:`merge`; read the one-row-per-group table with
    :meth:`result`.  Group order is first-seen order across the update
    stream, matching :class:`GroupBy` on the concatenated input.  State
    size is O(groups), independent of total rows.
    """

    def __init__(self, keys: Sequence[str], spec: Mapping[str, Sequence[str] | str]) -> None:
        if not keys:
            raise FrameError("group_by requires at least one key column")
        self._keys = tuple(keys)
        normalized: list[tuple[str, str]] = []
        need: dict[str, set[str]] = {}
        for column, reducers in spec.items():
            if isinstance(reducers, str):
                reducers = [reducers]
            for name in reducers:
                if name not in _BUILTIN_REDUCERS:
                    raise FrameError(
                        f"unknown reducer {name!r}; choose from {sorted(_BUILTIN_REDUCERS)}"
                    )
                if name not in STREAMABLE_REDUCERS:
                    raise FrameError(
                        f"reducer {name!r} on column {column!r} cannot run "
                        "streaming: it has no mergeable partial state (it "
                        "needs every group value at once). Either call "
                        ".materialize() on the chunked table and aggregate "
                        "in memory, or feed the column into a "
                        "repro.frame.QuantileSketch (quantile(0.5) is a "
                        "rank-bounded median over one streaming pass); "
                        f"streamable reducers: {', '.join(STREAMABLE_REDUCERS)}"
                    )
                normalized.append((column, name))
                need.setdefault(column, set()).add(name)
        self._normalized = normalized
        self._need = need
        self._lookup: dict[tuple[Any, ...], int] = {}
        self._key_values: list[list[Any]] = [[] for _ in self._keys]
        self._counts = np.zeros(0, dtype=np.int64)
        self._sums: dict[str, np.ndarray] = {}
        self._sumsqs: dict[str, np.ndarray] = {}
        self._mins: dict[str, np.ndarray] = {}
        self._maxs: dict[str, np.ndarray] = {}
        self._firsts: dict[str, list[Any]] = {}
        self._lasts: dict[str, list[Any]] = {}
        for column, stats in need.items():
            if stats & {"sum", "mean", "std"}:
                self._sums[column] = np.zeros(0, dtype=float)
            if "std" in stats:
                self._sumsqs[column] = np.zeros(0, dtype=float)
            if "min" in stats:
                self._mins[column] = np.zeros(0, dtype=float)
            if "max" in stats:
                self._maxs[column] = np.zeros(0, dtype=float)
            if "first" in stats:
                self._firsts[column] = []
            if "last" in stats:
                self._lasts[column] = []

    @property
    def num_groups(self) -> int:
        return len(self._lookup)

    # ------------------------------------------------------------------
    def update(self, table: Table) -> "StreamingAggregateState":
        """Absorb one chunk."""
        if table.num_rows == 0:
            return self
        record_kernel("stream_aggregate", table.num_rows)
        fact = factorize_columns([table.column(k) for k in self._keys])
        reps = [table.column(k)[fact.first_rows] for k in self._keys]
        rep_rows = list(zip(*(col.tolist() for col in reps)))
        lookup = self._lookup
        gids = np.empty(fact.num_groups, dtype=np.intp)
        new_flags = np.zeros(fact.num_groups, dtype=bool)
        for g, key in enumerate(rep_rows):
            gid = lookup.get(key)
            if gid is None:
                gid = lookup[key] = len(lookup)
                for store, col in zip(self._key_values, reps):
                    store.append(col[g])
                new_flags[g] = True
            gids[g] = gid
        total = len(lookup)
        new_gids = gids[new_flags]
        old_mask = ~new_flags

        self._counts = _extend(self._counts, total, 0)
        self._counts[gids] += fact.sizes

        starts = fact.starts[:-1]
        sorted_cache: dict[str, np.ndarray] = {}
        for column, stats in self._need.items():
            values = sorted_cache.get(column)
            if values is None:
                values = sorted_cache[column] = table.column(column)[fact.order]
            if "first" in stats:
                firsts = self._firsts[column]
                chunk_firsts = values[starts]
                for g in np.flatnonzero(new_flags):
                    firsts.append(chunk_firsts[g])
            if "last" in stats:
                lasts = self._lasts[column]
                lasts.extend([None] * (total - len(lasts)))
                chunk_lasts = values[fact.starts[1:] - 1]
                for g in range(fact.num_groups):
                    lasts[gids[g]] = chunk_lasts[g]
            if not stats - {"first", "last", "count"}:
                continue
            floats = values.astype(float)
            if column in self._sums:
                partial = np.add.reduceat(floats, starts)
                arr = self._sums[column] = _extend(self._sums[column], total, 0.0)
                arr[new_gids] = partial[new_flags]
                arr[gids[old_mask]] += partial[old_mask]
            if column in self._sumsqs:
                partial = np.add.reduceat(floats * floats, starts)
                arr = self._sumsqs[column] = _extend(self._sumsqs[column], total, 0.0)
                arr[new_gids] = partial[new_flags]
                arr[gids[old_mask]] += partial[old_mask]
            if column in self._mins:
                partial = np.minimum.reduceat(floats, starts)
                arr = self._mins[column] = _extend(self._mins[column], total, np.inf)
                arr[new_gids] = partial[new_flags]
                old = gids[old_mask]
                arr[old] = np.minimum(arr[old], partial[old_mask])
            if column in self._maxs:
                partial = np.maximum.reduceat(floats, starts)
                arr = self._maxs[column] = _extend(self._maxs[column], total, -np.inf)
                arr[new_gids] = partial[new_flags]
                old = gids[old_mask]
                arr[old] = np.maximum(arr[old], partial[old_mask])
        return self

    def merge(self, other: "StreamingAggregateState") -> "StreamingAggregateState":
        """Fold another state into this one (parallel chunk partials).

        Groups unseen by ``self`` are appended in ``other``'s first-seen
        order, so merging states built from a partitioned stream gives
        the same group set (order depends on the merge order).
        """
        if other._keys != self._keys or other._normalized != self._normalized:
            raise FrameError("cannot merge streaming states with different specs")
        if not other._lookup:
            return self
        remap = np.empty(len(other._lookup), dtype=np.intp)
        new_other: list[int] = []
        for key, theirs in other._lookup.items():
            gid = self._lookup.get(key)
            if gid is None:
                gid = self._lookup[key] = len(self._lookup)
                for store, theirs_store in zip(self._key_values, other._key_values):
                    store.append(theirs_store[theirs])
                new_other.append(theirs)
            remap[theirs] = gid
        total = len(self._lookup)
        self._counts = _extend(self._counts, total, 0)
        np.add.at(self._counts, remap, other._counts)
        for ours, theirs, fill, combine in (
            (self._sums, other._sums, 0.0, "add"),
            (self._sumsqs, other._sumsqs, 0.0, "add"),
            (self._mins, other._mins, np.inf, "min"),
            (self._maxs, other._maxs, -np.inf, "max"),
        ):
            for column, their_arr in theirs.items():
                arr = ours[column] = _extend(ours[column], total, fill)
                if combine == "add":
                    np.add.at(arr, remap, their_arr)
                elif combine == "min":
                    np.minimum.at(arr, remap, their_arr)
                else:
                    np.maximum.at(arr, remap, their_arr)
        for column, their_firsts in other._firsts.items():
            firsts = self._firsts[column]
            for theirs in new_other:
                firsts.append(their_firsts[theirs])
        for column, their_lasts in other._lasts.items():
            lasts = self._lasts[column]
            lasts.extend([None] * (total - len(lasts)))
            for theirs, value in enumerate(their_lasts):
                lasts[remap[theirs]] = value
        return self

    # ------------------------------------------------------------------
    def result(self) -> Table:
        """The aggregate table: key columns plus ``{column}_{reducer}``."""
        total = len(self._lookup)
        if total == 0:
            return Table.from_rows([])
        data: dict[str, Any] = {
            name: _key_column(store)
            for name, store in zip(self._keys, self._key_values)
        }
        counts = self._counts[:total]
        for column, name in self._normalized:
            out = f"{column}_{name}"
            if name == "count":
                data[out] = counts.copy()
            elif name == "sum":
                data[out] = self._sums[column][:total].copy()
            elif name == "mean":
                data[out] = self._sums[column][:total] / counts
            elif name == "std":
                mean = self._sums[column][:total] / counts
                variance = self._sumsqs[column][:total] / counts - mean * mean
                data[out] = np.sqrt(np.where(np.isnan(variance), np.nan, np.maximum(variance, 0.0)))
            elif name == "min":
                data[out] = self._mins[column][:total].copy()
            elif name == "max":
                data[out] = self._maxs[column][:total].copy()
            elif name == "first":
                data[out] = _key_column(self._firsts[column])
            elif name == "last":
                data[out] = _key_column(self._lasts[column])
        return Table(data)

    def sizes(self) -> Table:
        """Key columns plus a ``count`` column, like :meth:`GroupBy.sizes`."""
        total = len(self._lookup)
        if total == 0:
            return Table.from_rows([])
        data: dict[str, Any] = {
            name: _key_column(store)
            for name, store in zip(self._keys, self._key_values)
        }
        data["count"] = self._counts[:total].copy()
        return Table(data)


def _extend(arr: np.ndarray, n: int, fill: Any) -> np.ndarray:
    """Grow a running per-group array to ``n`` slots, filling new ones."""
    if n <= len(arr):
        return arr
    grown = np.full(n, fill, dtype=arr.dtype)
    grown[: len(arr)] = arr
    return grown


def _key_column(values: list[Any]) -> np.ndarray:
    """Materialize collected per-group scalars as a column.

    The scalars were plucked from per-chunk numpy columns, so rebuild
    through a list round-trip: numeric lists become typed arrays,
    anything else an object column — the same coercion
    :class:`~repro.frame.Table` applies to user input.
    """
    from repro.frame.column import as_column

    return as_column([_unwrap(v) for v in values])


def _reduce_segments(values: np.ndarray, fact: Factorization, name: str) -> np.ndarray:
    """Reduce a code-sorted value column into one value per group.

    Every kernel is whole-column vectorized and bit-identical to
    applying the matching ``_BUILTIN_REDUCERS`` entry per group.
    """
    starts = fact.starts[:-1]
    if name == "count":
        return fact.sizes.astype(np.int64, copy=False)
    if name == "first":
        return values[starts]
    if name == "last":
        return values[fact.starts[1:] - 1]
    floats = values.astype(float)
    if name in ("min", "max"):
        ufunc = np.minimum if name == "min" else np.maximum
        return ufunc.reduceat(floats, starts)
    counts = fact.sizes
    if name == "sum":
        return np.add.reduceat(floats, starts)
    if name == "mean":
        return np.add.reduceat(floats, starts) / counts
    if name == "std":
        means = np.add.reduceat(floats, starts) / counts
        centered = floats - np.repeat(means, counts)
        return np.sqrt(np.add.reduceat(centered * centered, starts) / counts)
    if name == "median":
        return _segment_median(floats, fact)
    raise FrameError(f"no vectorized kernel for reducer {name!r}")


def _segment_median(floats: np.ndarray, fact: Factorization) -> np.ndarray:
    """Per-segment median: value-sort within segments, average middles.

    Matches ``np.median`` bit-for-bit: the even-count cell is the same
    ``(a + b) / 2`` of the two middle elements, and any NaN in a
    segment yields NaN (NaNs sort last, so ``np.median`` sees one at
    the top and poisons the result).
    """
    counts = fact.sizes
    starts = fact.starts[:-1]
    seg_dtype = np.uint16 if fact.num_groups <= np.iinfo(np.uint16).max else np.intp
    segment_ids = np.repeat(np.arange(fact.num_groups, dtype=seg_dtype), counts)
    # Sort by (segment, value) in two passes: an unstable value sort
    # (ties between equal floats cannot change a median) followed by a
    # stable radix sort of the small segment ids — much cheaper than
    # one lexsort with a float key.
    by_value_order = np.argsort(floats)
    regroup = np.argsort(segment_ids[by_value_order], kind="stable")
    by_value = floats[by_value_order[regroup]]
    lo = by_value[starts + (counts - 1) // 2]
    hi = by_value[starts + counts // 2]
    medians = np.where(counts % 2 == 1, lo, (lo + hi) / 2.0)
    has_nan = np.add.reduceat(np.isnan(floats), starts) > 0
    if has_nan.any():
        medians = np.where(has_nan, np.nan, medians)
    return medians
