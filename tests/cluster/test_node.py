"""Tests for runtime node/GPU allocation accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import Cluster, GpuDevice, Node
from repro.cluster.spec import NodeSpec, supercloud_spec
from repro.errors import SchedulerError


@pytest.fixture
def node():
    return Node(0, NodeSpec())


class TestGpuDevice:
    def test_acquire_release(self):
        gpu = GpuDevice(0, 0)
        gpu.acquire(7)
        assert not gpu.is_free
        gpu.release(7)
        assert gpu.is_free

    def test_double_acquire_rejected(self):
        gpu = GpuDevice(0, 0)
        gpu.acquire(1)
        with pytest.raises(SchedulerError, match="already owned"):
            gpu.acquire(2)

    def test_release_by_non_owner_rejected(self):
        gpu = GpuDevice(0, 0)
        gpu.acquire(1)
        with pytest.raises(SchedulerError, match="does not own"):
            gpu.release(2)


class TestNodeAllocation:
    def test_allocate_reduces_free(self, node):
        node.allocate(1, cores=8, memory_gb=64.0, gpus=1)
        assert node.free_cores == 32
        assert node.free_memory_gb == 320.0
        assert node.free_gpus == 1

    def test_release_restores(self, node):
        node.allocate(1, 8, 64.0, 2)
        node.release(1)
        assert node.free_cores == 40
        assert node.free_gpus == 2

    def test_multiple_jobs_colocate(self, node):
        node.allocate(1, 8, 64.0, 1)
        node.allocate(2, 8, 64.0, 1)
        assert node.used_gpus == 2
        assert len(node.allocations) == 2

    def test_gpu_exclusivity(self, node):
        node.allocate(1, 4, 10.0, 2)
        assert not node.can_fit(1, 1.0, 1)

    def test_overcommit_rejected(self, node):
        with pytest.raises(SchedulerError, match="cannot fit"):
            node.allocate(1, cores=41, memory_gb=1.0, gpus=0)

    def test_duplicate_allocation_rejected(self, node):
        node.allocate(1, 1, 1.0, 0)
        with pytest.raises(SchedulerError, match="already allocated"):
            node.allocate(1, 1, 1.0, 0)

    def test_release_unknown_job_rejected(self, node):
        with pytest.raises(SchedulerError, match="holds nothing"):
            node.release(99)

    def test_allocation_records_gpu_indices(self, node):
        allocation = node.allocate(1, 1, 1.0, 2)
        assert allocation.gpu_indices == (0, 1)

    def test_invariants_pass_after_churn(self, node):
        node.allocate(1, 8, 64.0, 1)
        node.allocate(2, 8, 64.0, 1)
        node.release(1)
        node.allocate(3, 16, 100.0, 1)
        node.check_invariants()


class TestCluster:
    def test_totals(self):
        cluster = Cluster(supercloud_spec(4))
        assert cluster.free_gpus == 8
        assert cluster.free_cores == 160

    def test_utilization_fractions(self):
        cluster = Cluster(supercloud_spec(2))
        cluster.nodes[0].allocate(1, 20, 192.0, 2)
        util = cluster.utilization()
        assert util["gpu"] == pytest.approx(0.5)
        assert util["cores"] == pytest.approx(0.25)
        assert util["memory"] == pytest.approx(0.25)

    def test_check_invariants_delegates(self):
        cluster = Cluster(supercloud_spec(2))
        cluster.nodes[1].allocate(5, 4, 16.0, 1)
        cluster.check_invariants()


@given(st.lists(st.tuples(st.integers(1, 8), st.integers(0, 2)), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_allocate_release_conserves_resources(requests):
    """Property: after allocating whatever fits and releasing it all,
    the node is back to pristine state; invariants hold throughout."""
    node = Node(0, NodeSpec())
    live = []
    for job_id, (cores, gpus) in enumerate(requests):
        if node.can_fit(cores, 1.0, gpus):
            node.allocate(job_id, cores, 1.0, gpus)
            live.append(job_id)
        node.check_invariants()
    for job_id in live:
        node.release(job_id)
        node.check_invariants()
    assert node.free_cores == node.spec.physical_cores
    assert node.free_gpus == node.spec.gpus_per_node
    assert node.free_memory_gb == node.spec.ram_gb
