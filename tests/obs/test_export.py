"""Exporter coverage: Chrome trace-event schema validation, the
Prometheus text round trip, and the run-report / trace-summary text
paths."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    parse_prometheus_text,
    prometheus_text,
    run_report,
    summarize_chrome_trace,
    write_chrome_trace,
)


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("build", category="pipeline", rows=100):
        with tracer.span("workload", category="pipeline"):
            pass
        with tracer.span("schedule", category="pipeline"):
            pass
    return tracer


class TestChromeTraceSchema:
    def test_complete_event_fields(self):
        events = chrome_trace_events(_sample_tracer())
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            # required Trace Event Format fields for a complete event
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert event["dur"] >= 0
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert "span_id" in event["args"]
            assert "parent_id" in event["args"]

    def test_metadata_event_per_process(self):
        events = chrome_trace_events(_sample_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"
        assert "name" in meta[0]["args"]

    def test_events_sorted_by_monotonic_ts(self):
        events = [e for e in chrome_trace_events(_sample_tracer()) if e["ph"] == "X"]
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_nesting_is_matched(self):
        # every child interval lies inside its parent's interval
        events = [e for e in chrome_trace_events(_sample_tracer()) if e["ph"] == "X"]
        by_id = {e["args"]["span_id"]: e for e in events}
        for event in events:
            parent_id = event["args"]["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            assert parent["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]

    def test_attrs_travel_in_args(self):
        events = chrome_trace_events(_sample_tracer())
        build = next(e for e in events if e.get("name") == "build")
        assert build["args"]["rows"] == 100

    def test_write_and_reload(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json", _sample_tracer(), metadata={"k": "v"}
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"] == {"k": "v"}
        assert len(document["traceEvents"]) == 4

    def test_summarize(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _sample_tracer())
        text = summarize_chrome_trace(path)
        assert "3 spans across 1 process(es)" in text
        assert "build" in text

    def test_summarize_empty(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", Tracer())
        assert summarize_chrome_trace(path) == "empty trace (no complete events)"


def _sample_metrics():
    m = MetricsRegistry()
    m.counter("repro_cache_events_total", help="cache ops", kind="hit").inc(3)
    m.counter("repro_cache_events_total", kind="miss").inc()
    m.gauge("repro_scheduler_peak_queue", help="peak queue").set(17)
    h = m.histogram("repro_stage_seconds", buckets=(0.1, 1.0), help="stage s", stage="workload")
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return m


class TestPrometheusText:
    def test_help_and_type_lines(self):
        text = prometheus_text(_sample_metrics())
        assert "# HELP repro_cache_events_total cache ops" in text
        assert "# TYPE repro_cache_events_total counter" in text
        assert "# TYPE repro_scheduler_peak_queue gauge" in text
        assert "# TYPE repro_stage_seconds histogram" in text
        # TYPE emitted once per metric name, not per series
        assert text.count("# TYPE repro_cache_events_total counter") == 1

    def test_histogram_exposition(self):
        text = prometheus_text(_sample_metrics())
        assert 'repro_stage_seconds_bucket{stage="workload",le="0.1"} 1' in text
        assert 'repro_stage_seconds_bucket{stage="workload",le="1"} 2' in text
        assert 'repro_stage_seconds_bucket{stage="workload",le="+Inf"} 3' in text
        assert 'repro_stage_seconds_count{stage="workload"} 3' in text

    def test_round_trip(self):
        metrics = _sample_metrics()
        samples = parse_prometheus_text(prometheus_text(metrics))
        assert samples[("repro_cache_events_total", (("kind", "hit"),))] == 3
        assert samples[("repro_cache_events_total", (("kind", "miss"),))] == 1
        assert samples[("repro_scheduler_peak_queue", ())] == 17
        assert samples[
            ("repro_stage_seconds_bucket", (("stage", "workload"), ("le", "+Inf")))
        ] == 3
        assert samples[("repro_stage_seconds_sum", (("stage", "workload"),))] == pytest.approx(5.55)

    def test_label_escaping_round_trip(self):
        m = MetricsRegistry()
        m.counter("c", path='a"b\\c', note="x,y").inc()
        samples = parse_prometheus_text(prometheus_text(m))
        assert samples[("c", (("note", "x,y"), ("path", 'a"b\\c')))] == 1

    def test_ends_with_newline(self):
        assert prometheus_text(_sample_metrics()).endswith("\n")


class TestRunReport:
    def test_span_tree_and_metric_digest(self):
        report = run_report(_sample_tracer(), _sample_metrics())
        assert "== trace (3 spans) ==" in report
        lines = report.splitlines()
        build = next(l for l in lines if "build" in l)
        workload = next(l for l in lines if "workload" in l and "repro_" not in l)
        # children render indented under their parent
        assert len(workload) - len(workload.lstrip()) > len(build) - len(build.lstrip())
        assert 'repro_cache_events_total{kind="hit"} = 3' in report
        assert "repro_stage_seconds" in report

    def test_empty_report(self):
        report = run_report(Tracer(), MetricsRegistry())
        assert "== trace (empty) ==" in report
        assert "(none recorded)" in report
