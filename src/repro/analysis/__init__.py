"""The characterization toolkit — the paper's primary contribution.

Each module implements one family of analyses from the paper:

* :mod:`repro.analysis.stats` — ECDFs, CoV, quantiles, Spearman.
* :mod:`repro.analysis.phases` — active/idle phase segmentation of GPU
  time series and phase-interval statistics (Fig 6, Fig 7a).
* :mod:`repro.analysis.bottleneck` — resource-bottleneck detection,
  single and pairwise (Fig 7b, Fig 8).
* :mod:`repro.analysis.power` — power-cap impact and over-provisioning
  headroom (Fig 9).
* :mod:`repro.analysis.users` — per-user aggregation and the Pareto
  activity statistics (Fig 10, 11; Sec. IV).
* :mod:`repro.analysis.correlation` — user-behavior correlations (Fig 12).
* :mod:`repro.analysis.multigpu` — cross-GPU utilization variability of
  multi-GPU jobs (Fig 13, 14; Sec. V).
* :mod:`repro.analysis.lifecycle` — the development life-cycle
  classification and its resource footprint (Fig 15-17; Sec. VI).
"""

from repro.analysis.bottleneck import BottleneckAnalysis, pairwise_bottlenecks, single_bottlenecks
from repro.analysis.correlation import user_behavior_correlations
from repro.analysis.lifecycle import (
    classify_exit,
    lifecycle_breakdown,
    user_lifecycle_composition,
)
from repro.analysis.multigpu import gpu_count_breakdown, multi_gpu_cov, user_gpu_breadth
from repro.analysis.phases import PhaseStats, phase_stats, within_active_cov
from repro.analysis.power import power_cap_impact, power_headroom
from repro.analysis.prediction import (
    predict_user_behavior,
    predictability_gain,
    strategy_comparison,
)
from repro.analysis.stats import Ecdf, coefficient_of_variation, ecdf, spearman
from repro.analysis.timeline import (
    capacity_sweep,
    daily_gpu_hours,
    gpu_occupancy,
    surge_visibility,
)
from repro.analysis.users import pareto_stats, user_table

__all__ = [
    "BottleneckAnalysis",
    "Ecdf",
    "PhaseStats",
    "capacity_sweep",
    "classify_exit",
    "coefficient_of_variation",
    "daily_gpu_hours",
    "gpu_occupancy",
    "surge_visibility",
    "ecdf",
    "gpu_count_breakdown",
    "lifecycle_breakdown",
    "multi_gpu_cov",
    "pairwise_bottlenecks",
    "pareto_stats",
    "phase_stats",
    "power_cap_impact",
    "power_headroom",
    "predict_user_behavior",
    "predictability_gain",
    "strategy_comparison",
    "single_bottlenecks",
    "spearman",
    "user_behavior_correlations",
    "user_gpu_breadth",
    "user_lifecycle_composition",
    "user_table",
    "within_active_cov",
]
