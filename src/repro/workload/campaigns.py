"""Structured campaign generator (paper Fig 2's workflow, executable).

The calibrated generator treats each job independently; this module
produces *workflow-shaped* job sequences for targeted studies: an IDE
design session, a few crashing development runs, a hyper-parameter
sweep with user-killed losers, and a final mature training run —
exactly the life cycle the paper describes.  Used by examples and by
tests of the transition-mining analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.slurm.job import JobRequest
from repro.workload.activity import (
    JobActivityModel,
    PhaseSchedule,
    PowerModel,
    build_metric_process,
)

HOUR = 3600.0

_POWER = PowerModel(idle_w=25.0, per_sm=1.25, per_mem=0.4, per_pcie=0.03, per_size=0.2)


@dataclass(frozen=True)
class CampaignSpec:
    """Shape of one development campaign."""

    ide_sessions: int = 1
    ide_limit_s: float = 12.0 * HOUR
    debug_runs: int = 3
    debug_runtime_range_s: tuple = (120.0, 900.0)
    sweep_trials: int = 12
    sweep_winners: int = 1
    trial_runtime_range_s: tuple = (0.5 * HOUR, 3.0 * HOUR)
    winner_runtime_s: float = 6.0 * HOUR
    final_runtime_s: float = 10.0 * HOUR
    final_gpus: int = 2
    think_time_s: float = 300.0
    sweep_sm_range: tuple = (25.0, 60.0)

    def __post_init__(self) -> None:
        if self.sweep_winners > self.sweep_trials:
            raise WorkloadError("cannot have more winners than trials")
        if self.think_time_s < 0:
            raise WorkloadError("think time must be non-negative")


class CampaignGenerator:
    """Builds scheduler-ready requests for workflow campaigns."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._next_job_id = 0

    def _activity(self, duration_s, sm_level, active_fraction, num_gpus=1):
        rng = self._rng
        schedule = PhaseSchedule.generate(
            rng, duration_s, active_fraction,
            mean_active_s=120.0, active_cov=1.7, idle_cov=1.3,
        )
        processes = {
            name: build_metric_process(
                rng, level=level, noise_cov=0.12,
                burst_level=min(level * 1.6, 97.0),
                schedule=schedule, num_bursts=2,
            )
            for name, level in {
                "sm": sm_level,
                "mem_bw": sm_level * 0.1,
                "mem_size": sm_level * 0.6,
                "pcie_tx": 12.0,
                "pcie_rx": 20.0,
            }.items()
        }
        return JobActivityModel(
            job_id=-1, num_gpus=num_gpus, duration_s=duration_s,
            schedule=schedule, processes=processes,
            gpu_scale=np.ones(num_gpus), power_model=_POWER,
        )

    def _request(self, user, submit, runtime, intended_class, sm_level,
                 active_fraction, num_gpus=1, time_limit=96.0 * HOUR,
                 interface="other"):
        request = JobRequest(
            job_id=self._next_job_id,
            user=user,
            submit_time_s=submit,
            runtime_s=runtime,
            num_gpus=num_gpus,
            cores=4 * num_gpus,
            memory_gb=40.0,
            interface=interface,
            intended_class=intended_class,
            time_limit_s=time_limit,
        )
        self._next_job_id += 1
        effective = min(runtime, time_limit)
        request.tags["activity"] = self._activity(
            effective, sm_level, active_fraction, num_gpus
        )
        request.tags["campaign_stage"] = intended_class
        return request

    def build(self, user: str, start_s: float, spec: CampaignSpec | None = None) -> list[JobRequest]:
        """Generate one campaign's requests in submission order."""
        spec = spec or CampaignSpec()
        rng = self._rng
        requests: list[JobRequest] = []
        clock = start_s

        for _ in range(spec.ide_sessions):
            requests.append(
                self._request(
                    user, clock, spec.ide_limit_s * 1.01, "ide",
                    sm_level=0.0, active_fraction=0.02,
                    time_limit=spec.ide_limit_s, interface="interactive",
                )
            )
            clock += spec.think_time_s

        for _ in range(spec.debug_runs):
            runtime = float(rng.uniform(*spec.debug_runtime_range_s))
            requests.append(
                self._request(
                    user, clock, runtime, "development",
                    sm_level=3.0, active_fraction=0.2,
                )
            )
            clock += spec.think_time_s

        winners = set(
            rng.choice(spec.sweep_trials, size=spec.sweep_winners, replace=False)
        ) if spec.sweep_trials else set()
        for trial in range(spec.sweep_trials):
            win = trial in winners
            runtime = (
                spec.winner_runtime_s
                if win
                else float(rng.uniform(*spec.trial_runtime_range_s))
            )
            requests.append(
                self._request(
                    user, clock, runtime,
                    "mature" if win else "exploratory",
                    sm_level=float(rng.uniform(*spec.sweep_sm_range)),
                    active_fraction=0.9,
                )
            )
            clock += spec.think_time_s / 4.0

        requests.append(
            self._request(
                user, clock, spec.final_runtime_s, "mature",
                sm_level=55.0, active_fraction=0.95, num_gpus=spec.final_gpus,
            )
        )
        return requests

    def build_population(
        self, num_users: int, horizon_s: float, spec: CampaignSpec | None = None
    ) -> list[JobRequest]:
        """One campaign per user, starts spread over the horizon."""
        if num_users < 1:
            raise WorkloadError("need at least one user")
        requests: list[JobRequest] = []
        starts = np.sort(self._rng.uniform(0.0, horizon_s, num_users))
        for index, start in enumerate(starts):
            requests.extend(self.build(f"wf_user_{index:03d}", float(start), spec))
        requests.sort(key=lambda r: r.submit_time_s)
        for job_id, request in enumerate(requests):
            request.job_id = job_id
        return requests
