"""The combined study dataset and its compatibility entry points.

The dataset *engine* lives in :mod:`repro.pipeline`: a
:class:`~repro.pipeline.session.Session` runs the staged
``workload → schedule → monitor → assemble`` pipeline with per-stage
instrumentation, an on-disk artifact cache, and process-parallel
figure fan-out.  This module keeps the data container
(:class:`SupercloudDataset`) and the historical one-call entry points:

* :func:`generate_dataset` — thin wrapper over ``Session.dataset()``;
* :func:`default_dataset` — deprecated memoized variant, now routed
  through a shared session registry instead of a ``functools.lru_cache``
  that silently ignored the monitoring configuration.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec
from repro.frame import Table
from repro.monitor.collector import MonitoringConfig
from repro.monitor.timeseries import TimeSeriesStore
from repro.slurm.job import JobRecord
from repro.workload.generator import WorkloadConfig


@dataclass
class SupercloudDataset:
    """The reproduced study dataset.

    Attributes
    ----------
    jobs:
        All finished jobs (CPU and GPU) with accounting fields; GPU
        summary metrics joined where available.
    gpu_jobs:
        GPU jobs after the paper's 30-second filter, with per-job GPU
        metrics averaged over the job's GPUs.
    per_gpu:
        One row per (job, GPU) with metric summaries plus job context.
    timeseries:
        Dense series store for the sampled subset of jobs.
    """

    jobs: Table
    gpu_jobs: Table
    per_gpu: Table
    timeseries: TimeSeriesStore
    records: list[JobRecord]
    spec: ClusterSpec
    config: WorkloadConfig

    @property
    def is_streaming(self) -> bool:
        """Whether the job tables are chunked streams (see
        :meth:`repro.pipeline.Session.streaming_dataset`)."""
        from repro.frame import ChunkedTable

        return isinstance(self.jobs, ChunkedTable)

    @property
    def num_users(self) -> int:
        from repro.frame import ChunkedTable

        gpu_jobs = self.gpu_jobs
        if isinstance(gpu_jobs, ChunkedTable):
            # One streaming pass, O(distinct users) state.
            return gpu_jobs.value_counts("user").num_rows
        return len(set(gpu_jobs["user"]))

    def describe(self) -> str:
        """Short textual summary mirroring the paper's Sec. II stats."""
        return (
            f"{self.config.days:g}-day study: {self.jobs.num_rows} total jobs, "
            f"{self.gpu_jobs.num_rows} GPU jobs after the 30 s filter, "
            f"{self.num_users} users, "
            f"{len(self.timeseries.job_ids())} jobs with dense time series"
        )

    def streaming_view(self, chunk_rows: int | None = None) -> "SupercloudDataset":
        """A copy whose job tables are chunked views of the same data.

        Every registered figure producer consumes either
        representation: count/share statistics are bit-identical on
        both paths, quantiles come from rank-bounded sketches on the
        chunked one, and the heavy analysis kernels
        (:mod:`repro.analysis`) fold the chunk stream with bounded
        state.  ``timeseries``/``records`` are shared, and
        :meth:`repro.monitor.timeseries.TimeSeriesStore.scan_table`
        streams the dense samples.  When ``chunk_rows`` is omitted each
        table picks an adaptive size targeting
        :data:`repro.frame.DEFAULT_CHUNK_BYTES` per chunk.  A dataset
        that is already streaming (a sharded spill build) is returned
        as-is.

        The view presents the job tables in ascending ``job_id`` order
        — the order the sharded builds' k-way merge emits — which is
        also ascending submit time (ids are assigned by submit order),
        so the sequential streaming folds (transitions, prediction
        replay) and the per-job group folds (``per_gpu`` sorted by
        ``(job_id, gpu_index)``) hold on every chunk stream.
        """
        import dataclasses

        if self.is_streaming:
            return self

        return dataclasses.replace(
            self,
            jobs=self.jobs.sort_by("job_id").to_chunked(chunk_rows),
            gpu_jobs=self.gpu_jobs.sort_by("job_id").to_chunked(chunk_rows),
            per_gpu=self.per_gpu.sort_by("job_id", "gpu_index").to_chunked(chunk_rows),
        )

    def materialize(self) -> "SupercloudDataset":
        """Pull a streaming dataset fully back into memory.

        Chunked job tables concatenate into :class:`~repro.frame.Table`
        objects and a spilled series store loads into a
        :class:`~repro.monitor.timeseries.TimeSeriesStore`; an already
        materialized dataset is returned as-is.  The explicit escape
        hatch for consumers that need whole-table verbs at a scale that
        still fits in memory.
        """
        import dataclasses

        from repro.monitor.timeseries import SpilledTimeSeriesStore

        if not self.is_streaming:
            return self
        timeseries = self.timeseries
        if isinstance(timeseries, SpilledTimeSeriesStore):
            timeseries = timeseries.materialize()
        return dataclasses.replace(
            self,
            jobs=self.jobs.materialize(),
            gpu_jobs=self.gpu_jobs.materialize(),
            per_gpu=self.per_gpu.materialize(),
            timeseries=timeseries,
        )


def generate_dataset(
    config: WorkloadConfig | None = None,
    monitoring: MonitoringConfig | None = None,
) -> SupercloudDataset:
    """Run the full pipeline and assemble the combined dataset.

    Compatibility wrapper over :meth:`repro.pipeline.Session.dataset`
    (no disk cache, no memoization — a fresh build every call).  New
    code that builds the dataset more than once, wants the artifact
    cache, or fans out across workers should hold a ``Session``.
    """
    from repro.pipeline.session import Session

    return Session(config=config, monitoring=monitoring).dataset()


#: Sessions backing :func:`default_dataset`, keyed by (scale, seed, days).
_DEFAULT_SESSIONS: dict[tuple[float, int, float], "object"] = {}


def default_dataset(scale: float = 0.1, seed: int = 20220214, days: float = 125.0) -> SupercloudDataset:
    """Memoized dataset for figures/benchmarks sharing one generation.

    .. deprecated:: 1.1
        Use :class:`repro.pipeline.Session`, which keys its cache on
        the *full* workload and monitoring configuration (this helper
        only distinguishes ``(scale, seed, days)``) and adds disk
        persistence and parallel fan-out.
    """
    warnings.warn(
        "default_dataset() is deprecated; build a repro.pipeline.Session "
        "and call session.dataset() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.pipeline.session import Session

    key = (scale, seed, days)
    session = _DEFAULT_SESSIONS.get(key)
    if session is None:
        session = Session(WorkloadConfig(scale=scale, seed=seed, days=days))
        _DEFAULT_SESSIONS[key] = session
    return session.dataset()
