"""Fig 3: run times and queue waits of GPU vs CPU jobs."""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import ecdf
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 3(a): runtime CDFs; Fig 3(b): wait time as % of service time."""
    gpu = dataset.gpu_jobs
    cpu = dataset.jobs.filter(lambda t: np.asarray(t["num_gpus"]) == 0)

    gpu_runtime = ecdf(np.asarray(gpu["run_time_s"], dtype=float) / 60.0)
    cpu_runtime = ecdf(np.asarray(cpu["run_time_s"], dtype=float) / 60.0)
    gpu_wait_frac = ecdf(np.asarray(gpu["wait_fraction"], dtype=float))
    cpu_wait_frac = ecdf(np.asarray(cpu["wait_fraction"], dtype=float))
    gpu_wait = np.asarray(gpu["wait_time_s"], dtype=float)
    cpu_wait = np.asarray(cpu["wait_time_s"], dtype=float)

    comparisons = [
        Comparison("GPU runtime p25", 4.0, gpu_runtime.quantile(0.25), " min"),
        Comparison("GPU runtime median", 30.0, gpu_runtime.median(), " min"),
        Comparison("GPU runtime p75", 300.0, gpu_runtime.quantile(0.75), " min"),
        Comparison("CPU runtime median", 8.0, cpu_runtime.median(), " min"),
        Comparison(
            "GPU jobs waiting <2% of service", 0.50, float(gpu_wait_frac.evaluate(0.02))
        ),
        Comparison(
            "CPU jobs waiting <2% of service", 0.20, float(cpu_wait_frac.evaluate(0.02))
        ),
        Comparison("GPU jobs waiting <1 min", 0.70, float((gpu_wait < 60.0).mean())),
        Comparison("CPU jobs waiting >1 min", 0.70, float((cpu_wait > 60.0).mean())),
    ]
    return FigureResult(
        figure_id="fig03",
        title="Run times and queue waits, GPU vs CPU jobs",
        series={
            "gpu_runtime_cdf": gpu_runtime,
            "cpu_runtime_cdf": cpu_runtime,
            "gpu_wait_fraction_cdf": gpu_wait_frac,
            "cpu_wait_fraction_cdf": cpu_wait_frac,
        },
        comparisons=comparisons,
        notes="waits emerge from the scheduler simulation, not from anchors",
    )
