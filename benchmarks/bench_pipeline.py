"""End-to-end pipeline benchmarks: generation, scheduling, monitoring."""

from repro.dataset import generate_dataset
from repro.slurm.scheduler import SlurmSimulator
from repro.cluster.spec import supercloud_spec
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def test_workload_generation(benchmark):
    def generate():
        return WorkloadGenerator(WorkloadConfig(scale=0.02, seed=1)).generate()

    requests = benchmark(generate)
    assert len(requests) > 500


def test_scheduler_simulation(benchmark):
    config = WorkloadConfig(scale=0.02, seed=1)
    requests = WorkloadGenerator(config).generate()

    def simulate():
        # jobs carry no monitoring here: pure scheduler throughput
        return SlurmSimulator(supercloud_spec(config.scaled_nodes)).run(list(requests))

    result = benchmark(simulate)
    assert len(result.records) == len(requests)


def test_full_dataset_pipeline(benchmark):
    def build():
        return generate_dataset(WorkloadConfig(scale=0.01, seed=2))

    dataset = benchmark(build)
    assert dataset.gpu_jobs.num_rows > 100
