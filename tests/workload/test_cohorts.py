"""Cohort-sharded workload generation must match the serial oracle.

The contract pinned here is the foundation of the partitioned build:
the sharded path (independent spawn-keyed RNG streams, any worker
count) draws **bit-for-bit identical jobs** to running the same shards
serially, and ``cohorts=1`` preserves the legacy single-stream output.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.cohorts import (
    CPU_STREAM,
    FIRST_COHORT_STREAM,
    build_population,
    cohort_members,
    cohort_stream,
    generate_sharded,
    generation_tasks,
    run_generation_task,
)
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def small_config(**overrides):
    defaults = dict(scale=0.01, seed=11)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def job_fingerprint(request):
    """Everything that identifies a drawn job (activity model included)."""
    activity = request.tags.get("activity")
    return (
        request.job_id,
        request.user,
        round(request.submit_time_s, 9),
        round(request.runtime_s, 9),
        request.num_gpus,
        request.cores,
        request.memory_gb,
        request.tags.get("cohort"),
        None if activity is None else round(float(np.sum(activity.gpu_scale)), 9),
    )


class TestConfig:
    def test_defaults_stay_serial(self):
        config = small_config()
        assert config.partitions == 1
        assert config.resolved_cohorts == 1

    def test_cohorts_default_to_partitions(self):
        assert small_config(partitions=4).resolved_cohorts == 4
        assert small_config(partitions=2, cohorts=6).resolved_cohorts == 6

    def test_fewer_cohorts_than_partitions_rejected(self):
        with pytest.raises(WorkloadError, match="every island"):
            small_config(partitions=4, cohorts=2)

    def test_invalid_counts_rejected(self):
        with pytest.raises(WorkloadError):
            small_config(partitions=0)
        with pytest.raises(WorkloadError):
            small_config(cohorts=0)


class TestStreams:
    def test_streams_are_independent_of_each_other(self):
        # drawing from one stream must not perturb another
        a_alone = cohort_stream(7, FIRST_COHORT_STREAM).random(4)
        cohort_stream(7, CPU_STREAM).random(1000)
        a_again = cohort_stream(7, FIRST_COHORT_STREAM).random(4)
        assert np.array_equal(a_alone, a_again)

    def test_population_rebuild_is_deterministic(self):
        config = small_config(cohorts=3)
        pop_a, counts_a = build_population(config)
        pop_b, counts_b = build_population(config)
        assert np.array_equal(counts_a, counts_b)
        assert len(pop_a) == len(pop_b) == config.scaled_users

    def test_cohort_members_partition_users(self):
        config = small_config(cohorts=3)
        seen = sorted(
            index for c in range(3) for index in cohort_members(config, c)
        )
        assert seen == list(range(config.scaled_users))
        with pytest.raises(WorkloadError):
            cohort_members(config, 3)

    def test_tasks_cover_cohorts_and_cpu(self):
        tasks = generation_tasks(small_config(cohorts=3))
        assert [t.kind for t in tasks] == ["cohort", "cohort", "cohort", "cpu"]
        no_cpu = generation_tasks(small_config(cohorts=2, include_cpu_jobs=False))
        assert [t.kind for t in no_cpu] == ["cohort", "cohort"]

    def test_unknown_task_kind_rejected(self):
        from repro.workload.cohorts import GenerationTask

        with pytest.raises(WorkloadError, match="unknown"):
            run_generation_task(small_config(cohorts=2), GenerationTask("bogus"))


class TestShardedEqualsSerial:
    def test_cohorts_one_matches_legacy_bit_for_bit(self):
        config = small_config()
        legacy = WorkloadGenerator(config).generate()
        sharded = generate_sharded(config, workers=1)
        assert list(map(job_fingerprint, legacy)) == list(
            map(job_fingerprint, sharded)
        )

    @settings(max_examples=4, deadline=None)
    @given(
        cohorts=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_worker_count_never_changes_the_draw(self, cohorts, seed):
        config = small_config(seed=seed, cohorts=cohorts)
        serial = generate_sharded(config, workers=1)
        parallel = generate_sharded(config, workers=min(4, cohorts + 1))
        assert list(map(job_fingerprint, serial)) == list(
            map(job_fingerprint, parallel)
        )

    def test_every_job_tagged_with_valid_cohort(self):
        config = small_config(cohorts=3)
        for request in generate_sharded(config):
            assert 0 <= int(request.tags["cohort"]) < 3

    def test_output_shape_contract(self):
        requests = generate_sharded(small_config(cohorts=4))
        assert [r.job_id for r in requests] == list(range(len(requests)))
        times = [r.submit_time_s for r in requests]
        assert times == sorted(times)

    def test_cohort_count_preserves_totals(self):
        # sharding repartitions the same per-user allocation, so the
        # GPU-job count is invariant in the cohort count
        base = generate_sharded(small_config(cohorts=2))
        more = generate_sharded(small_config(cohorts=5))
        gpu = lambda reqs: sum(1 for r in reqs if r.num_gpus > 0)
        assert gpu(base) == gpu(more)
