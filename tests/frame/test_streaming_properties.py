"""Streaming-vs-oracle equivalence on randomized tables and chunkings.

The streaming engine's exactness contract (docs/performance.md):

* ``count``/``min``/``max``/``first``/``last``, ``value_counts``,
  ``filter``, ``join``, and group identity/order are **bit-for-bit**
  identical to the materialized kernels (and hence to
  :mod:`repro.frame.reference`) at *any* chunking — including one row
  per chunk and everything in one chunk;
* ``sum``/``mean`` accumulate per-chunk float partials: equal within
  float tolerance always, and bit-for-bit when every addend is exactly
  representable (integer-valued floats);
* ``std`` uses the sum-of-squares identity: float tolerance only;
* sketch quantiles honor the sketch's *tracked* ``rank_error_bound()``
  and are exact while it is zero.

NaN keys are excluded for the same reason as in
test_vectorized_properties.py: group identity under NaN keys is
object-identity, which hypothesis cannot meaningfully vary.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import (
    QuantileSketch,
    StreamingMoments,
    Table,
    concat_tables,
    merge_sorted_chunked,
)
from repro.frame.reference import naive_aggregate, naive_value_counts

EXACT_REDUCERS = ("count", "min", "max", "first", "last")

key_ints = st.integers(-3, 3)
key_names = st.text(alphabet="abc", min_size=1, max_size=2)
values = st.floats(allow_nan=False, allow_infinity=False, width=32)
small_values = st.floats(-1e3, 1e3, allow_nan=False)
int_values = st.integers(-100, 100).map(float)


@st.composite
def keyed_tables(draw, min_rows=1, max_rows=40, num_keys=1, value_st=values):
    """A table with mixed-dtype key columns plus numeric ``v0``/``v1``."""
    n = draw(st.integers(min_rows, max_rows))
    data = {}
    for i in range(num_keys):
        kind = draw(st.sampled_from(["int", "str", "str_none", "mixed"]))
        if kind == "int":
            column = draw(st.lists(key_ints, min_size=n, max_size=n))
        elif kind == "str":
            column = draw(st.lists(key_names, min_size=n, max_size=n))
        elif kind == "str_none":
            column = draw(
                st.lists(st.one_of(key_names, st.none()), min_size=n, max_size=n)
            )
        else:
            column = draw(
                st.lists(
                    st.one_of(key_names, key_ints, st.none()), min_size=n, max_size=n
                )
            )
        data[f"k{i}"] = column
    data["v0"] = draw(st.lists(value_st, min_size=n, max_size=n))
    data["v1"] = draw(st.lists(value_st, min_size=n, max_size=n))
    return Table(data)


def _chunkings(draw_rows: int, extra: int) -> tuple[int, ...]:
    """The chunk sizes every property must hold at: one row per chunk,
    everything in one chunk, and a drawn size in between."""
    return tuple(dict.fromkeys((1, max(draw_rows, 1), max(extra, 1))))


@given(keyed_tables(), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_exact_reducers_bit_for_bit(t, chunk_rows):
    spec = {"v0": list(EXACT_REDUCERS), "v1": "count"}
    oracle = naive_aggregate(t, ("k0",), spec).to_dict()
    for rows in _chunkings(t.num_rows, chunk_rows):
        streamed = t.to_chunked(chunk_rows=rows).group_by("k0").aggregate(spec)
        assert streamed.to_dict() == oracle


@given(keyed_tables(num_keys=2), st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_multi_key_exact_reducers(t, chunk_rows):
    spec = {"v0": ["count", "min", "max"]}
    oracle = naive_aggregate(t, ("k0", "k1"), spec).to_dict()
    for rows in _chunkings(t.num_rows, chunk_rows):
        streamed = t.to_chunked(chunk_rows=rows).group_by("k0", "k1").aggregate(spec)
        assert streamed.to_dict() == oracle


@given(keyed_tables(value_st=int_values), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_sum_mean_bit_exact_on_representable_addends(t, chunk_rows):
    spec = {"v0": ["sum", "mean"], "v1": "sum"}
    oracle = naive_aggregate(t, ("k0",), spec).to_dict()
    for rows in _chunkings(t.num_rows, chunk_rows):
        streamed = t.to_chunked(chunk_rows=rows).group_by("k0").aggregate(spec)
        assert streamed.to_dict() == oracle


@given(keyed_tables(value_st=small_values), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_sum_mean_std_within_float_tolerance(t, chunk_rows):
    spec = {"v0": ["sum", "mean", "std"]}
    oracle = naive_aggregate(t, ("k0",), spec)
    for rows in _chunkings(t.num_rows, chunk_rows):
        streamed = t.to_chunked(chunk_rows=rows).group_by("k0").aggregate(spec)
        assert list(streamed["k0"]) == list(oracle["k0"])
        for column in ("v0_sum", "v0_mean", "v0_std"):
            np.testing.assert_allclose(
                np.asarray(streamed[column], dtype=float),
                np.asarray(oracle[column], dtype=float),
                rtol=1e-6,
                atol=1e-3,  # sum-of-squares std on |v| <= 1e3
                err_msg=f"{column} at chunk_rows={rows}",
            )


@given(keyed_tables(), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_value_counts_matches_oracle(t, chunk_rows):
    oracle = naive_value_counts(t, "k0").to_dict()
    for rows in _chunkings(t.num_rows, chunk_rows):
        assert t.to_chunked(chunk_rows=rows).value_counts("k0").to_dict() == oracle


@given(keyed_tables(value_st=small_values), st.integers(1, 40), st.floats(-1e3, 1e3))
@settings(max_examples=40, deadline=None)
def test_filter_matches_materialized(t, chunk_rows, threshold):
    predicate = lambda tab: np.asarray(tab["v0"], dtype=float) > threshold  # noqa: E731
    expected = t.filter(predicate).to_dict()
    for rows in _chunkings(t.num_rows, chunk_rows):
        streamed = t.to_chunked(chunk_rows=rows).filter(predicate).materialize()
        assert streamed.to_dict() == expected


@given(keyed_tables(max_rows=25), st.integers(1, 25))
@settings(max_examples=40, deadline=None)
def test_broadcast_join_matches_materialized(t, chunk_rows):
    keys = list(dict.fromkeys(t["k0"].tolist()))
    right = Table({"k0": keys, "r0": [float(i) for i in range(len(keys))]})
    for how in ("inner", "left"):
        expected = t.join(right, on="k0", how=how).to_dict()
        for rows in _chunkings(t.num_rows, chunk_rows):
            streamed = (
                t.to_chunked(chunk_rows=rows)
                .join(right, on="k0", how=how)
                .materialize()
            )
            assert streamed.to_dict() == expected


@given(
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=300),
    st.integers(8, 32),
    st.integers(1, 50),
)
@settings(max_examples=60, deadline=None)
def test_sketch_quantiles_within_tracked_bound(samples, k, chunk_rows):
    sketch = QuantileSketch(k=k)
    for start in range(0, len(samples), chunk_rows):
        sketch.update(samples[start : start + chunk_rows])
    ordered = np.sort(np.asarray(samples, dtype=float))
    bound = sketch.rank_error_bound()
    for p in (0.0, 0.25, 0.5, 0.75, 1.0):
        estimate = sketch.quantile(p)
        # With ties, the estimate's rank is an interval; the target must
        # fall within bound+1 of it (exact quantiles of tied data sit at
        # the interval's edge, not its middle).
        lo = np.searchsorted(ordered, estimate, side="left")
        hi = np.searchsorted(ordered, estimate, side="right")
        target = p * ordered.size
        assert lo - (bound + 1) <= target <= hi + (bound + 1)


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_sketch_exact_below_capacity(samples):
    from repro.analysis.stats import ecdf

    sketch = QuantileSketch(k=512).update(samples)
    assert sketch.rank_error_bound() == 0
    exact = ecdf(samples)
    for p in (0.0, 0.1, 0.5, 0.9, 1.0):
        assert sketch.quantile(p) == exact.quantile(p)
    for x in samples[:10]:
        assert sketch.evaluate(x) == exact.evaluate(x)


@st.composite
def sorted_sources(draw, max_sources=4, num_keys=1):
    """Several tables sorted on shared key columns of one drawn dtype —
    the shape the sharded build's k-way spill merge consumes."""
    kind = draw(st.sampled_from(["int", "str"]))
    key_st = key_ints if kind == "int" else key_names
    num_sources = draw(st.integers(1, max_sources))
    tables = []
    for _ in range(num_sources):
        n = draw(st.integers(1, 25))
        data = {
            f"k{i}": draw(st.lists(key_st, min_size=n, max_size=n))
            for i in range(num_keys)
        }
        data["v0"] = draw(st.lists(small_values, min_size=n, max_size=n))
        tables.append(Table(data).sort_by(*(f"k{i}" for i in range(num_keys))))
    return tables


@given(sorted_sources(), st.integers(1, 30))
@settings(max_examples=50, deadline=None)
def test_kway_merge_is_concat_plus_stable_sort(tables, chunk_rows):
    """merge_sorted_chunked == concat + stable sort_by, bit for bit,
    at any chunking (including one row per chunk and all-in-one)."""
    oracle = concat_tables(tables).sort_by("k0").to_dict()
    total = sum(t.num_rows for t in tables)
    for rows in _chunkings(total, chunk_rows):
        merged = merge_sorted_chunked(
            [t.to_chunked(chunk_rows=rows) for t in tables],
            ("k0",),
            chunk_rows=rows,
        )
        assert merged.materialize().to_dict() == oracle


@given(sorted_sources(num_keys=2), st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_kway_merge_multi_key(tables, chunk_rows):
    oracle = concat_tables(tables).sort_by("k0", "k1").to_dict()
    total = sum(t.num_rows for t in tables)
    for rows in _chunkings(total, chunk_rows):
        merged = merge_sorted_chunked(
            [t.to_chunked(chunk_rows=rows) for t in tables],
            ("k0", "k1"),
            chunk_rows=rows,
        )
        assert merged.materialize().to_dict() == oracle


@given(sorted_sources(max_sources=1), st.integers(1, 25), st.integers(1, 25))
@settings(max_examples=40, deadline=None)
def test_join_sorted_matches_materialized_join(tables, left_rows, right_rows):
    """Streaming merge-join on key-sorted streams == Table.join, for
    inner and left joins, with the right side chunked independently.

    Keys are homogeneous (all-int or all-str): join_sorted compares
    key values *across* chunks, which — unlike the hash join — needs
    one ordered dtype, exactly like the job-id keys the sharded
    assemble feeds it.
    """
    left = tables[0]
    keys = list(dict.fromkeys(left["k0"].tolist()))
    # Drop every other key so inner joins actually discard rows.
    kept = keys[::2]
    right = Table(
        {"k0": kept, "r0": [float(i) for i in range(len(kept))]}
    ).sort_by("k0")
    for how in ("inner", "left"):
        expected = left.join(right, on="k0", how=how).to_dict()
        for lrows in _chunkings(left.num_rows, left_rows):
            for right_side in (
                right,
                right.to_chunked(chunk_rows=max(right_rows, 1)),
            ):
                streamed = (
                    left.to_chunked(chunk_rows=lrows)
                    .join_sorted(right_side, on="k0", how=how)
                    .materialize()
                )
                assert streamed.to_dict() == expected, (how, lrows)


@given(
    st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=200),
    st.integers(1, 50),
)
@settings(max_examples=60, deadline=None)
def test_moments_match_numpy(samples, chunk_rows):
    arr = np.asarray(samples, dtype=float)
    moments = StreamingMoments()
    for start in range(0, arr.size, chunk_rows):
        moments.update(arr[start : start + chunk_rows])
    assert moments.count == arr.size
    assert moments.minimum == arr.min()
    assert moments.maximum == arr.max()
    np.testing.assert_allclose(moments.mean(), arr.mean(), rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(
        moments.std(), arr.std(ddof=0), rtol=1e-6, atol=1e-3
    )
