"""Tests for the SVG chart renderer."""

import pytest

from repro.errors import ReproError
from repro.plot import BarSeries, BoxSeries, Figure, LineSeries


class TestSeriesValidation:
    def test_line_length_mismatch(self):
        with pytest.raises(ReproError):
            LineSeries("x", [1, 2], [1])

    def test_line_needs_two_points(self):
        with pytest.raises(ReproError):
            LineSeries("x", [1], [1])

    def test_bar_length_mismatch(self):
        with pytest.raises(ReproError):
            BarSeries("x", ["a"], [1, 2])

    def test_bar_empty(self):
        with pytest.raises(ReproError):
            BarSeries("x", [], [])

    def test_box_ordering_enforced(self):
        with pytest.raises(ReproError):
            BoxSeries("x", ["a"], [(3.0, 2.0, 1.0)])


class TestRendering:
    def test_line_chart_structure(self):
        fig = Figure(title="t", x_label="xx", y_label="yy")
        fig.add(LineSeries("s", [0.0, 1.0, 2.0], [0.0, 0.5, 1.0]))
        svg = fig.render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "polyline" in svg
        assert ">t<" in svg and ">xx<" in svg and ">yy<" in svg

    def test_log_axis_renders_decade_ticks(self):
        fig = Figure(x_log=True)
        fig.add(LineSeries("s", [1.0, 10.0, 1000.0], [0.0, 0.5, 1.0]))
        svg = fig.render()
        assert ">10<" in svg
        assert ">1000<" in svg

    def test_log_axis_rejects_nonpositive(self):
        fig = Figure(x_log=True)
        fig.add(LineSeries("s", [0.0, 0.0], [0.0, 1.0]))
        with pytest.raises(ReproError, match="positive"):
            fig.render()

    def test_bar_chart_has_rects(self):
        fig = Figure()
        fig.add(BarSeries("b", ["a", "b", "c"], [1.0, 2.0, 3.0]))
        svg = fig.render()
        assert svg.count("<rect") >= 5  # background + frame + 3 bars

    def test_box_chart_has_median_lines(self):
        fig = Figure()
        fig.add(BoxSeries("b", ["m", "e"], [(1.0, 2.0, 3.0), (0.0, 1.0, 2.0)]))
        svg = fig.render()
        assert svg.count("stroke-width=\"2\"") >= 2

    def test_legend_rendered_for_multiple_series(self):
        fig = Figure()
        fig.add(LineSeries("alpha", [0, 1], [0, 1]))
        fig.add(LineSeries("beta", [0, 1], [1, 0]))
        svg = fig.render()
        assert "alpha" in svg and "beta" in svg

    def test_empty_figure_rejected(self):
        with pytest.raises(ReproError, match="no series"):
            Figure().render()

    def test_mixed_series_rejected(self):
        fig = Figure()
        fig.add(LineSeries("l", [0, 1], [0, 1]))
        fig.add(BarSeries("b", ["a"], [1.0]))
        with pytest.raises(ReproError, match="mix"):
            fig.render()

    def test_mismatched_categories_rejected(self):
        fig = Figure()
        fig.add(BarSeries("a", ["x"], [1.0]))
        fig.add(BarSeries("b", ["y"], [1.0]))
        with pytest.raises(ReproError, match="share categories"):
            fig.render()

    def test_title_escaped(self):
        fig = Figure(title="a < b & c")
        fig.add(LineSeries("s", [0, 1], [0, 1]))
        svg = fig.render()
        assert "a &lt; b &amp; c" in svg

    def test_constant_series_renders(self):
        fig = Figure()
        fig.add(LineSeries("flat", [1.0, 2.0], [5.0, 5.0]))
        assert "<polyline" in fig.render()


class TestTicks:
    def test_nice_ticks_cover_range(self):
        ticks = Figure._nice_ticks(0.0, 1.0)
        assert ticks[0] >= 0.0
        assert ticks[-1] <= 1.0
        assert len(ticks) >= 3

    def test_nice_ticks_degenerate(self):
        assert Figure._nice_ticks(5.0, 5.0) == [5.0]

    def test_format_tick(self):
        assert Figure._format_tick(0.0) == "0"
        assert Figure._format_tick(3.0) == "3"
        assert Figure._format_tick(0.001) == "1e-03"
        assert Figure._format_tick(123456.0) == "1e+05"
