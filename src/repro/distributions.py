"""Calibrated random distributions.

The paper reports its findings as empirical CDF quantiles ("the median
run time of GPU jobs is 30 minutes, the 25th percentile is 4 minutes
...").  To regenerate a dataset with the same shape we sample from
inverse CDFs *anchored directly on those reported quantiles*.  This
module provides that machinery:

* :class:`QuantileDistribution` — a piecewise (log-)linear inverse CDF
  passing through explicit ``(probability, value)`` anchors.  This is
  the workhorse of :mod:`repro.workload`.
* :class:`LogNormal` — parameterised by median and coefficient of
  variation, matching how the paper quotes spread.
* :class:`Mixture` — weighted mixture (used for per-class utilization).
* :class:`Constant`, :class:`Uniform`, :class:`BoundedPareto`,
  :class:`Categorical` — supporting casts.

All distributions expose ``sample(rng, size)`` and, where meaningful,
``quantile(p)`` / ``cdf(x)`` so tests can verify calibration without
sampling noise.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import CalibrationError


class Distribution:
    """Interface for scalar random distributions used by the generator."""

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Draw ``size`` samples (or a scalar when ``size`` is None)."""
        raise NotImplementedError

    def mean_estimate(self, rng: np.random.Generator, n: int = 4096) -> float:
        """Monte-Carlo mean, for distributions without a closed form."""
        return float(np.mean(self.sample(rng, n)))


class QuantileDistribution(Distribution):
    """Inverse-CDF sampler through explicit quantile anchors.

    Parameters
    ----------
    anchors:
        Sequence of ``(probability, value)`` pairs.  Probabilities must
        be strictly increasing in ``(0, 1)`` boundaries included, and
        values must be non-decreasing.  Anchors at p=0 and p=1 define
        the support; if absent they are extrapolated from the nearest
        segment.
    log_space:
        Interpolate value in log space.  This matches the paper's
        log-scaled runtime axes and produces heavy right tails.
    """

    def __init__(self, anchors: Sequence[tuple[float, float]], log_space: bool = False) -> None:
        if len(anchors) < 2:
            raise CalibrationError("need at least two quantile anchors")
        probs = [float(p) for p, _ in anchors]
        values = [float(v) for _, v in anchors]
        if any(b <= a for a, b in zip(probs, probs[1:])):
            raise CalibrationError(f"anchor probabilities must be strictly increasing: {probs}")
        if any(b < a for a, b in zip(values, values[1:])):
            raise CalibrationError(f"anchor values must be non-decreasing: {values}")
        if probs[0] < 0.0 or probs[-1] > 1.0:
            raise CalibrationError("anchor probabilities must lie in [0, 1]")
        if log_space and values[0] <= 0.0:
            raise CalibrationError("log-space anchors must be positive")
        if probs[0] > 0.0:
            probs.insert(0, 0.0)
            values.insert(0, values[0])
        if probs[-1] < 1.0:
            probs.append(1.0)
            values.append(values[-1])
        self._probs = np.asarray(probs)
        self._log_space = log_space
        self._values = np.log(values) if log_space else np.asarray(values)

    def quantile(self, p: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the inverse CDF at probability ``p``."""
        p = np.clip(p, 0.0, 1.0)
        out = np.interp(p, self._probs, self._values)
        if self._log_space:
            out = np.exp(out)
        if np.isscalar(p) or np.ndim(p) == 0:
            return float(out)
        return out

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the CDF (inverse of :meth:`quantile` on anchors)."""
        values = np.log(np.maximum(x, 1e-300)) if self._log_space else np.asarray(x, dtype=float)
        out = np.interp(values, self._values, self._probs, left=0.0, right=1.0)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    @property
    def support(self) -> tuple[float, float]:
        """(min, max) attainable values."""
        lo, hi = self._values[0], self._values[-1]
        if self._log_space:
            return float(np.exp(lo)), float(np.exp(hi))
        return float(lo), float(hi)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        u = rng.random(size)
        return self.quantile(u)


class LogNormal(Distribution):
    """Lognormal parameterised by median and coefficient of variation.

    The paper quotes phase-length variability as CoV percentages
    (e.g. "idle interval CoV median 126%"); for a lognormal,
    ``CoV^2 = exp(sigma^2) - 1`` which we invert here.
    """

    def __init__(self, median: float, cov: float) -> None:
        if median <= 0:
            raise CalibrationError(f"median must be positive, got {median}")
        if cov <= 0:
            raise CalibrationError(f"CoV must be positive, got {cov}")
        self.median = float(median)
        self.cov = float(cov)
        self.sigma = math.sqrt(math.log(1.0 + cov * cov))
        self.mu = math.log(median)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(self.mu, self.sigma, size)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)


class Constant(Distribution):
    """Degenerate distribution that always returns ``value``."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self.value
        return np.full(size, self.value)


class Uniform(Distribution):
    """Uniform distribution on ``[low, high)``."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise CalibrationError(f"uniform bounds reversed: [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self.low, self.high, size)


class BoundedPareto(Distribution):
    """Pareto distribution truncated to ``[low, high]``.

    Used for user activity: a small number of "expert" users submit
    most jobs (the paper: top 5% of users submit 44% of jobs).
    """

    def __init__(self, alpha: float, low: float, high: float) -> None:
        if alpha <= 0:
            raise CalibrationError(f"alpha must be positive, got {alpha}")
        if not 0 < low < high:
            raise CalibrationError(f"need 0 < low < high, got [{low}, {high}]")
        self.alpha = float(alpha)
        self.low = float(low)
        self.high = float(high)

    def quantile(self, p: float | np.ndarray):
        la, ha = self.low**self.alpha, self.high**self.alpha
        return (-(p * ha - p * la - ha) / (ha * la)) ** (-1.0 / self.alpha)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        u = rng.random(size)
        out = self.quantile(u)
        if size is None:
            return float(out)
        return out


class Mixture(Distribution):
    """Weighted mixture of component distributions."""

    def __init__(self, components: Sequence[Distribution], weights: Sequence[float]) -> None:
        if len(components) != len(weights):
            raise CalibrationError("components and weights must have the same length")
        if not components:
            raise CalibrationError("mixture needs at least one component")
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise CalibrationError(f"weights must be non-negative and sum > 0: {weights}")
        self.components = list(components)
        self.weights = np.asarray([w / total for w in weights])

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            idx = rng.choice(len(self.components), p=self.weights)
            return self.components[idx].sample(rng)
        choices = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.empty(size, dtype=float)
        for i, component in enumerate(self.components):
            mask = choices == i
            count = int(mask.sum())
            if count:
                out[mask] = component.sample(rng, count)
        return out


class Categorical:
    """Weighted choice over arbitrary labels (not a scalar Distribution)."""

    def __init__(self, labels: Sequence, weights: Sequence[float]) -> None:
        if len(labels) != len(weights):
            raise CalibrationError("labels and weights must have the same length")
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise CalibrationError(f"weights must be non-negative and sum > 0: {weights}")
        self.labels = list(labels)
        self.probabilities = np.asarray([w / total for w in weights])

    def sample(self, rng: np.random.Generator, size: int | None = None):
        idx = rng.choice(len(self.labels), size=size, p=self.probabilities)
        if size is None:
            return self.labels[int(idx)]
        return [self.labels[i] for i in np.asarray(idx)]


def clipped(samples: np.ndarray | float, low: float, high: float):
    """Clip samples into ``[low, high]`` (utilization percentages etc.)."""
    return np.clip(samples, low, high)
