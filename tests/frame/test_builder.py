"""Unit tests for :class:`repro.frame.TableBuilder`."""

import numpy as np
import pytest

from repro.errors import FrameError, LengthMismatchError
from repro.frame import Table, TableBuilder


class TestAppendRow:
    def test_matches_from_rows_on_ragged_dicts(self):
        rows = [
            {"a": 1, "b": "x"},
            {"b": "y", "c": 2.5},
            {"a": 3},
        ]
        builder = TableBuilder()
        for row in rows:
            builder.append_row(row)
        assert builder.finish().to_dict() == Table.from_rows(rows).to_dict()

    def test_kwargs_merge_over_mapping(self):
        builder = TableBuilder()
        builder.append_row({"a": 1, "b": 2}, b=20)
        assert builder.finish().to_dict() == {"a": [1], "b": [20]}

    def test_declared_columns_fix_order_and_survive_empty(self):
        builder = TableBuilder(columns=["x", "y"])
        assert builder.finish().column_names == ("x", "y")
        builder.append_row(y=1.0)
        table = builder.finish()
        assert table.column_names == ("x", "y")
        assert table.to_dict() == {"x": [None], "y": [1.0]}

    def test_new_column_backfills_none(self):
        builder = TableBuilder()
        builder.append_row(a=1)
        builder.append_row(a=2, b="late")
        assert builder.finish().to_dict() == {"a": [1, 2], "b": [None, "late"]}


class TestExtendColumns:
    def test_batch_fragments(self):
        builder = TableBuilder()
        builder.extend_columns({"a": np.arange(3), "b": ["x", "y", "z"]})
        builder.extend_columns({"a": [3, 4], "b": ["w", "v"]})
        table = builder.finish()
        assert list(table["a"]) == [0, 1, 2, 3, 4]
        assert list(table["b"]) == ["x", "y", "z", "w", "v"]

    def test_missing_and_new_columns_backfill(self):
        builder = TableBuilder()
        builder.extend_columns({"a": [1, 2]})
        builder.extend_columns({"b": [True, False]})
        assert builder.finish().to_dict() == {
            "a": [1, 2, None, None],
            "b": [None, None, True, False],
        }

    def test_unequal_fragments_raise(self):
        builder = TableBuilder()
        with pytest.raises(LengthMismatchError):
            builder.extend_columns({"a": [1, 2], "b": [1]})

    def test_bare_string_fragment_rejected(self):
        builder = TableBuilder()
        with pytest.raises(FrameError, match="wrap it in a list"):
            builder.extend_columns({"a": "oops"})

    def test_empty_mapping_is_noop(self):
        builder = TableBuilder()
        builder.extend_columns({})
        assert len(builder) == 0


class TestFinish:
    def test_non_destructive(self):
        builder = TableBuilder()
        builder.append_row(a=1)
        first = builder.finish()
        builder.append_row(a=2)
        second = builder.finish()
        assert first.num_rows == 1
        assert second.num_rows == 2

    def test_columns_coerced_through_normal_rules(self):
        builder = TableBuilder()
        builder.append_row(num=1.5, text="a")
        table = builder.finish()
        assert table.dtypes() == {"num": "numeric", "text": "string"}


class TestAccumulator:
    def test_direct_appends_reach_finish(self):
        builder = TableBuilder(columns=["a", "b"])
        a, b = builder.accumulator("a"), builder.accumulator("b")
        for i in range(4):
            a.append(i)
            b.append(str(i))
        table = builder.finish()
        assert list(table["a"]) == [0, 1, 2, 3]

    def test_ragged_accumulators_fail_at_finish(self):
        builder = TableBuilder()
        builder.accumulator("a").extend([1, 2])
        builder.accumulator("b").append(1)
        with pytest.raises(LengthMismatchError):
            builder.finish()
