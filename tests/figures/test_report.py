"""Tests for the report renderer."""

from repro.figures.report import render_markdown, run_all, write_report


class TestReport:
    def test_run_all_covers_registry(self, small_dataset):
        from repro.figures.registry import all_figures

        results = run_all(small_dataset)
        assert len(results) == len(all_figures())
        assert len(results) >= 21  # 18 paper figures + 3 extensions

    def test_markdown_structure(self, small_dataset):
        results = run_all(small_dataset)
        text = render_markdown(small_dataset, results)
        assert text.startswith("# EXPERIMENTS")
        assert "## fig04" in text
        assert "| statistic | paper | measured | ratio |" in text

    def test_write_report(self, small_dataset, tmp_path):
        path = write_report(small_dataset, tmp_path / "EXPERIMENTS.md")
        assert path.exists()
        assert "fig15" in path.read_text()
