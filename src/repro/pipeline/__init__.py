"""Pipeline sessions: the shared, cached, parallel dataset engine.

Public surface:

* :class:`~repro.pipeline.session.Session` — owns dataset
  construction; the single entry point consumers talk to;
* :class:`~repro.pipeline.cache.DatasetCache` /
  :func:`~repro.pipeline.cache.dataset_key` — the on-disk artifact
  cache and its stable content-hash keys;
* :func:`~repro.pipeline.parallel.parallel_map` — process-parallel
  fan-out with a serial fallback;
* :class:`~repro.pipeline.instrument.PipelineInstrumentation` —
  per-stage timing/row-count records.
"""

from repro.pipeline.cache import (
    SCHEMA_VERSION,
    DatasetCache,
    dataset_key,
    default_cache_dir,
)
from repro.pipeline.instrument import PipelineInstrumentation, StageRecord
from repro.pipeline.parallel import parallel_map, resolve_workers
from repro.pipeline.session import BUILD_STAGES, Session, as_dataset

__all__ = [
    "BUILD_STAGES",
    "DatasetCache",
    "PipelineInstrumentation",
    "SCHEMA_VERSION",
    "Session",
    "StageRecord",
    "as_dataset",
    "dataset_key",
    "default_cache_dir",
    "parallel_map",
    "resolve_workers",
]
