"""Tests for cross-partition interchange (lockstep island coupling).

Pins the central refactor contract: a single-partition run through
:class:`PartitionedRunner` is bit-for-bit the plain
:meth:`SlurmSimulator.run`, and for any partition count the
epoch-lockstep stepping (``advance(until=...)``) produces exactly the
same records as letting each island run to completion — so the
process-parallel pipeline path and the serial runner are
interchangeable whenever the islands are uncoupled.
"""

import pytest

from repro.cluster.partition import PartitionLayout
from repro.cluster.spec import supercloud_spec
from repro.errors import SchedulerError
from repro.slurm.interchange import (
    InterchangeConfig,
    PartitionedRunner,
    route_requests,
    run_partitioned,
)
from repro.slurm.policies import FairSharePolicy
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from repro.workload.generator import WorkloadConfig
from repro.workload.cohorts import generate_sharded
from tests.slurm.test_job import make_request


def workload(cohorts=4, scale=0.01, seed=5):
    return generate_sharded(
        WorkloadConfig(scale=scale, seed=seed, cohorts=cohorts)
    )


def record_fingerprint(record):
    return (
        record.request.job_id,
        round(record.start_time_s, 9),
        round(record.end_time_s, 9),
        record.nodes,
        record.exit_condition,
    )


def fingerprints(records):
    return [record_fingerprint(r) for r in records]


class TestRouting:
    def test_routes_by_cohort_tag(self):
        requests = [
            make_request(job_id=i, tags={"cohort": i % 3}) for i in range(9)
        ]
        buckets = route_requests(requests, 3)
        assert [len(b) for b in buckets] == [3, 3, 3]
        for island, bucket in enumerate(buckets):
            assert all(r.tags["cohort"] % 3 == island for r in bucket)

    def test_untagged_requests_fall_back_to_job_id(self):
        requests = [make_request(job_id=i) for i in range(5)]
        buckets = route_requests(requests, 2)
        assert [r.job_id for r in buckets[0]] == [0, 2, 4]
        assert [r.job_id for r in buckets[1]] == [1, 3]


class TestConfigValidation:
    def test_epoch_must_be_positive(self):
        with pytest.raises(SchedulerError):
            InterchangeConfig(epoch_s=0.0)

    def test_migrate_threshold_must_be_nonnegative(self):
        with pytest.raises(SchedulerError):
            InterchangeConfig(migrate_after_s=-1.0)

    def test_coupled_property(self):
        assert not InterchangeConfig().coupled
        assert InterchangeConfig(migrate_after_s=60.0).coupled
        assert InterchangeConfig(fair_share_sync=True).coupled

    def test_failure_model_rejected_in_partitioned_runs(self):
        layout = PartitionLayout.even(16, 2)
        with pytest.raises(SchedulerError, match="failure"):
            PartitionedRunner(
                layout, config=SchedulerConfig(failure_model="weibull")
            )

    def test_policy_objects_rejected_in_partitioned_runs(self):
        layout = PartitionLayout.even(16, 2)
        with pytest.raises(SchedulerError, match="registry name"):
            PartitionedRunner(
                layout, config=SchedulerConfig(policy=FairSharePolicy())
            )

    def test_fair_share_sync_requires_fair_share_policy(self):
        layout = PartitionLayout.even(16, 2)
        with pytest.raises(SchedulerError, match="fair_share"):
            PartitionedRunner(
                layout,
                interchange=InterchangeConfig(fair_share_sync=True),
            )

    def test_run_partitioned_needs_a_size(self):
        with pytest.raises(SchedulerError, match="total_nodes"):
            run_partitioned([], 2)


class TestSinglePartitionOracle:
    def test_one_partition_is_plain_simulator_bit_for_bit(self):
        requests = workload(cohorts=1)
        plain = SlurmSimulator(supercloud_spec(8)).run(requests)
        part = run_partitioned(requests, 1, total_nodes=8)
        assert fingerprints(part.merged_records()) == fingerprints(
            sorted(plain.records, key=lambda r: r.request.job_id)
        )
        merged = part.merged()
        assert merged.events_processed == plain.events_processed
        assert merged.makespan_s == plain.makespan_s
        assert merged.peak_queue_length == plain.peak_queue_length


class TestLockstepOracle:
    @pytest.mark.parametrize("num_partitions", [1, 2, 4])
    def test_lockstep_equals_run_to_completion(self, num_partitions):
        """Epoch stepping with no state exchange must change nothing."""
        requests = workload(cohorts=max(num_partitions, 2))
        free = run_partitioned(requests, num_partitions, total_nodes=64)

        # Same islands, driven manually in small lockstep epochs.
        layout = PartitionLayout.even(64, num_partitions)
        runner = PartitionedRunner(layout)
        buckets = route_requests(requests, num_partitions)
        for simulator, bucket in zip(runner.simulators, buckets):
            simulator.begin(bucket)
        boundary = 3600.0
        while any(bool(s.loop) for s in runner.simulators):
            for simulator in runner.simulators:
                simulator.advance(until=boundary)
            boundary += 3600.0
        results = [s.finalize() for s in runner.simulators]
        lockstep = [
            record
            for part, result in zip(layout, results)
            for record in result.records
        ]
        from repro.slurm.interchange import _remap_nodes

        for part, result in zip(layout, results):
            _remap_nodes(result.records, part.node_start)
        lockstep.sort(key=lambda r: r.request.job_id)
        assert fingerprints(free.merged_records()) == fingerprints(lockstep)

    def test_all_jobs_complete_and_nodes_stay_in_island(self):
        requests = workload(cohorts=4)
        result = run_partitioned(requests, 4, total_nodes=64)
        records = result.merged_records()
        assert len(records) == len(requests)
        layout = result.layout
        for record in records:
            if not record.nodes:
                continue
            island = layout.island_for_cohort(int(record.request.tags["cohort"]))
            for node in record.nodes:
                assert island.node_start <= node < island.node_stop

    def test_invariants_hold_after_partitioned_run(self):
        requests = workload(cohorts=2)
        layout = PartitionLayout.even(16, 2)
        runner = PartitionedRunner(layout)
        runner.run(requests)
        for simulator in runner.simulators:
            simulator.cluster.check_invariants()


class TestMigration:
    def make_hot_island_requests(self):
        """Cohort 0 floods island 0; island 1 sits idle."""
        return [
            make_request(
                job_id=i,
                user=f"u{i % 3}",
                submit_time_s=0.0,
                runtime_s=7200.0,
                num_gpus=2,
                tags={"cohort": 0},
            )
            for i in range(24)
        ]

    def test_spillover_moves_jobs_and_tags_them(self):
        requests = self.make_hot_island_requests()
        result = run_partitioned(
            requests,
            2,
            total_nodes=4,
            interchange=InterchangeConfig(epoch_s=1800.0, migrate_after_s=600.0),
        )
        assert result.migrations > 0
        migrated = [
            r for r in result.merged_records() if r.request.tags.get("migrated")
        ]
        assert len(migrated) == result.migrations
        layout = result.layout
        for record in migrated:
            target = layout[record.request.tags["migrated_to"]]
            assert target.index == 1
            for node in record.nodes:
                assert target.node_start <= node < target.node_stop
        assert len(result.merged_records()) == len(requests)

    def test_migration_is_deterministic(self):
        def run_once():
            return run_partitioned(
                self.make_hot_island_requests(),
                2,
                total_nodes=4,
                interchange=InterchangeConfig(
                    epoch_s=1800.0, migrate_after_s=600.0
                ),
            )

        first, second = run_once(), run_once()
        assert first.migrations == second.migrations
        assert fingerprints(first.merged_records()) == fingerprints(
            second.merged_records()
        )

    def test_no_migration_without_less_loaded_target(self):
        # both islands equally flooded: no strictly-less-loaded target
        requests = [
            make_request(
                job_id=i,
                submit_time_s=0.0,
                runtime_s=7200.0,
                num_gpus=2,
                tags={"cohort": i % 2},
            )
            for i in range(24)
        ]
        result = run_partitioned(
            requests,
            2,
            total_nodes=4,
            interchange=InterchangeConfig(epoch_s=1800.0, migrate_after_s=600.0),
        )
        assert result.migrations == 0


class TestFairShareSync:
    def test_global_ledger_reaches_every_island(self):
        requests = workload(cohorts=2)
        layout = PartitionLayout.even(16, 2)
        runner = PartitionedRunner(
            layout,
            config=SchedulerConfig(policy="fair_share"),
            interchange=InterchangeConfig(epoch_s=3600.0, fair_share_sync=True),
        )
        result = runner.run(requests)
        assert len(result.merged_records()) == len(requests)
        assert runner._global_usage  # epochs actually drained usage
        # after the run every island holds the same global view
        for simulator in runner.simulators:
            for user, hours in runner._global_usage.items():
                assert simulator._policy._consumed[user] == pytest.approx(hours)

    def test_drain_and_set_usage_roundtrip(self):
        policy = FairSharePolicy()
        policy.observe_completion(make_request(job_id=1, num_gpus=2), 2.0)
        drained = policy.drain_usage()
        assert drained == {"u": pytest.approx(2.0)}
        assert policy.drain_usage() == {}  # deltas cleared
        policy.set_usage({"u": 5.0, "v": 1.0})
        assert policy._consumed["u"] == 5.0
        assert policy._consumed["v"] == 1.0
