"""Tests for the MIG partitioning what-if."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.frame import Table
from repro.opportunities.mig import (
    MIG_PROFILES,
    VALID_PARTITIONS,
    best_partition,
    mig_study,
    pack_jobs,
    partition_sweep,
    repartition_overhead_fraction,
    required_fraction,
)


def mig_jobs(rows):
    """rows: [(sm_mean, sm_max, size_mean, size_max), ...]"""
    return Table.from_rows(
        [
            {
                "sm_mean": sm_mean,
                "sm_max": sm_max,
                "mem_size_mean": size_mean,
                "mem_size_max": size_max,
            }
            for sm_mean, sm_max, size_mean, size_max in rows
        ]
    )


class TestGeometry:
    def test_profiles_fractions(self):
        assert MIG_PROFILES["7g"] == 1.0
        assert MIG_PROFILES["1g"] == pytest.approx(1.0 / 7.0)

    def test_valid_partitions_fit_a_device(self):
        for partition in VALID_PARTITIONS:
            assert sum(MIG_PROFILES[p] for p in partition) <= 1.0 + 1e-9

    def test_required_fraction_takes_max_dimension(self):
        req = required_fraction(np.asarray([10.0]), np.asarray([40.0]))
        assert req[0] == pytest.approx(0.4)


class TestPacking:
    def test_two_small_jobs_share_one_gpu(self):
        gpus, spilled, _ = pack_jobs(np.asarray([0.2, 0.2]), ("4g", "3g"))
        assert gpus == 1
        assert spilled == 0

    def test_big_job_spills_without_7g(self):
        gpus, spilled, _ = pack_jobs(np.asarray([0.9]), ("4g", "3g"))
        assert spilled == 1
        assert gpus == 1  # the spilled job still occupies one device

    def test_seven_tiny_jobs_fill_1g_partition(self):
        gpus, spilled, _ = pack_jobs(np.full(7, 0.1), ("1g",) * 7)
        assert gpus == 1
        assert spilled == 0

    def test_headroom_computed(self):
        _, _, headroom = pack_jobs(np.asarray([1.0 / 7.0]), ("1g",) * 7)
        assert headroom == pytest.approx(0.0, abs=1e-9)

    def test_exclusive_partition_one_job_per_gpu(self):
        gpus, _, _ = pack_jobs(np.asarray([0.1, 0.1, 0.1]), ("7g",))
        assert gpus == 3

    def test_invalid_partition_rejected(self):
        with pytest.raises(AnalysisError):
            pack_jobs(np.asarray([0.1]), ())
        with pytest.raises(AnalysisError):
            pack_jobs(np.asarray([0.1]), ("9g",))
        with pytest.raises(AnalysisError):
            pack_jobs(np.asarray([0.1]), ("7g", "1g"))


class TestStudy:
    def test_capacity_multiplier(self):
        jobs = mig_jobs([(5.0, 10.0, 5.0, 10.0)] * 6)
        study = mig_study(jobs, ("1g",) * 7)
        assert study.gpus_needed == 1
        assert study.capacity_multiplier == pytest.approx(6.0)
        assert study.fraction_fitting == 1.0

    def test_peak_sizing_more_conservative(self):
        jobs = mig_jobs([(10.0, 90.0, 5.0, 10.0)] * 4)
        peak = mig_study(jobs, ("4g", "3g"), sizing="peak")
        mean = mig_study(jobs, ("4g", "3g"), sizing="mean")
        assert mean.capacity_multiplier > peak.capacity_multiplier

    def test_invalid_sizing_rejected(self):
        with pytest.raises(AnalysisError):
            mig_study(mig_jobs([(1, 1, 1, 1)]), ("7g",), sizing="p99")

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            mig_study(mig_jobs([]), ("7g",))


class TestSweepAndBest:
    def test_sweep_rows(self, gpu_jobs):
        sweep = partition_sweep(gpu_jobs)
        assert sweep.num_rows == len(VALID_PARTITIONS)

    def test_exclusive_partition_multiplier_is_one(self, gpu_jobs):
        sweep = partition_sweep(gpu_jobs)
        row = [r for r in sweep.iter_rows() if r["partition"] == "7g"][0]
        assert row["capacity_multiplier"] == pytest.approx(1.0)

    def test_best_beats_exclusive(self, gpu_jobs):
        best = best_partition(gpu_jobs, sizing="mean")
        # the paper's low-utilization finding implies sizable MIG gains
        assert best.capacity_multiplier > 1.5

    def test_peak_sizing_still_gains(self, gpu_jobs):
        best = best_partition(gpu_jobs, sizing="peak")
        assert best.capacity_multiplier >= 1.0


class TestRepartitionOverhead:
    def test_formula(self):
        # 20 jobs/GPU/day, repartition every 10 jobs, 30 s each
        overhead = repartition_overhead_fraction(30.0, 20.0, 10.0)
        assert overhead == pytest.approx(2 * 30.0 / 86400.0)

    def test_capped_at_one(self):
        assert repartition_overhead_fraction(1e9, 100.0, 1.0) == 1.0

    def test_invalid_rejected(self):
        with pytest.raises(AnalysisError):
            repartition_overhead_fraction(-1.0, 1.0)
        with pytest.raises(AnalysisError):
            repartition_overhead_fraction(1.0, 1.0, 0.0)
