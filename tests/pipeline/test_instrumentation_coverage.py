"""Instrumentation coverage: the observability surface must keep up
with the pipeline surface.

These tests pin the contract that every build stage and every
registered figure producer runs under a span (and therefore shows up
in Chrome traces, the run report, and the flight recorder's span
mirror).  Adding a stage to ``BUILD_STAGES`` or a figure to the
registry without instrumentation fails here, not in a silent gap in
the next trace someone reads.
"""

from __future__ import annotations

import pytest

from repro.figures.registry import all_figures
from repro.pipeline import BUILD_STAGES, Session
from repro.workload.generator import WorkloadConfig

CONFIG = WorkloadConfig(scale=0.01, seed=31)


@pytest.fixture(scope="module")
def traced_session():
    session = Session(CONFIG)
    session.dataset()
    session.run_figures()
    return session


def test_every_build_stage_opens_a_span(traced_session):
    spans = {
        record.name
        for record in traced_session.tracer.finished()
        if record.category == "pipeline"
    }
    missing = [stage for stage in BUILD_STAGES if stage not in spans]
    assert not missing, f"stages built without a span: {missing}"


def test_every_registered_figure_opens_a_span(traced_session):
    spans = {record.name for record in traced_session.tracer.finished()}
    missing = [
        figure_id
        for figure_id in all_figures()
        if f"figure:{figure_id}" not in spans
    ]
    assert not missing, f"figures ran without a span: {missing}"


def test_every_figure_span_is_categorised(traced_session):
    for record in traced_session.tracer.finished():
        if record.name.startswith("figure:"):
            assert record.category == "figure", record.name


def test_every_build_stage_lands_in_the_flight_recorder(traced_session):
    stages = {
        event.attrs.get("stage")
        for event in traced_session.recorder.events()
        if event.name == "stage"
    }
    missing = [stage for stage in BUILD_STAGES if stage not in stages]
    assert not missing, f"stages missing from the flight recorder: {missing}"


def test_every_figure_run_is_timed(traced_session):
    timed = {
        dict(labels).get("figure")
        for name, labels, _ in traced_session.metrics.samples("histogram")
        if name == "repro_figure_seconds"
    }
    missing = [fig for fig in all_figures() if fig not in timed]
    assert not missing, f"figures without a timing histogram: {missing}"
