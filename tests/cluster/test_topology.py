"""Tests for the fat-tree topology model."""

import pytest

from repro.cluster.topology import FatTreeTopology
from repro.errors import ReproError


@pytest.fixture
def topo():
    return FatTreeTopology(num_nodes=70, leaf_radix=32, num_core=2)


class TestStructure:
    def test_leaf_count(self, topo):
        assert topo.num_leaves == 3  # ceil(70/32)

    def test_leaf_of(self, topo):
        assert topo.leaf_of(0) == 0
        assert topo.leaf_of(31) == 0
        assert topo.leaf_of(32) == 1
        assert topo.leaf_of(69) == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ReproError):
            FatTreeTopology(0)

    def test_node_out_of_range(self, topo):
        with pytest.raises(ReproError):
            topo.leaf_of(70)

    def test_bisection_links(self, topo):
        assert topo.bisection_links() == 6

    def test_graph_size(self, topo):
        # 70 nodes + 3 leaves + 2 cores
        assert topo.graph.number_of_nodes() == 75


class TestDistances:
    def test_same_node(self, topo):
        assert topo.hop_distance(5, 5) == 0

    def test_same_leaf(self, topo):
        assert topo.hop_distance(0, 31) == 2

    def test_cross_leaf(self, topo):
        assert topo.hop_distance(0, 32) == 4

    def test_symmetry(self, topo):
        assert topo.hop_distance(3, 40) == topo.hop_distance(40, 3)

    def test_group_span_empty(self, topo):
        assert topo.group_span([]) == 0

    def test_group_span_same_leaf(self, topo):
        assert topo.group_span([0, 1, 2]) == 2

    def test_group_span_cross_leaf(self, topo):
        assert topo.group_span([0, 1, 40]) == 4

    def test_neighbors_ordered_by_distance(self, topo):
        order = topo.neighbors_by_distance(0)
        assert order[0] == 1            # same leaf first
        assert set(order[:31]) == set(range(1, 32))
        assert len(order) == 69

    def test_neighbors_exclude_self(self, topo):
        assert 5 not in topo.neighbors_by_distance(5)
