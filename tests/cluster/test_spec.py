"""Tests for the hardware specification model (paper Table I)."""

import pytest

from repro.cluster.spec import ClusterSpec, GpuSpec, NodeSpec, supercloud_spec
from repro.errors import ReproError


class TestGpuSpec:
    def test_v100_defaults(self):
        gpu = GpuSpec()
        assert gpu.memory_gb == 32.0
        assert gpu.max_power_w == 300.0
        assert "V100" in gpu.model

    def test_invalid_envelope_rejected(self):
        with pytest.raises(ReproError):
            GpuSpec(memory_gb=0)

    def test_idle_above_max_rejected(self):
        with pytest.raises(ReproError):
            GpuSpec(idle_power_w=350.0)


class TestNodeSpec:
    def test_core_counts(self):
        node = NodeSpec()
        assert node.physical_cores == 40
        assert node.logical_cores == 80

    def test_two_gpus_per_node(self):
        assert NodeSpec().gpus_per_node == 2


class TestClusterSpec:
    def test_paper_totals(self):
        spec = supercloud_spec()
        assert spec.num_nodes == 224
        assert spec.total_gpus == 448
        assert spec.total_cores == 8960

    def test_power_budget(self):
        spec = supercloud_spec()
        assert spec.total_gpu_power_budget_w == 448 * 300.0

    def test_scaled_down(self):
        spec = supercloud_spec(10)
        assert spec.total_gpus == 20

    def test_zero_nodes_rejected(self):
        with pytest.raises(ReproError):
            ClusterSpec(num_nodes=0)

    def test_summary_rows_cover_sections(self):
        rows = supercloud_spec().summary_rows()
        sections = {row["section"] for row in rows}
        assert sections == {"node", "gpu", "storage"}
        items = {row["item"] for row in rows}
        assert "Number of GPUs" in items
