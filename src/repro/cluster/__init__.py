"""Hardware model of the Supercloud system (Table I of the paper).

* :mod:`repro.cluster.spec` — static specifications (nodes, GPUs,
  interconnect, storage, power envelopes).
* :mod:`repro.cluster.node` — runtime node/GPU state with allocation
  tracking used by the scheduler.
* :mod:`repro.cluster.topology` — the two-layer partial fat-tree
  Omnipath interconnect, used for dense placement of multi-node jobs.
* :mod:`repro.cluster.partition` — node-range islands for the sharded
  simulation path (see ``docs/scaling.md``).
"""

from repro.cluster.node import Cluster, GpuDevice, Node
from repro.cluster.partition import Partition, PartitionError, PartitionLayout
from repro.cluster.spec import (
    ClusterSpec,
    GpuSpec,
    NodeSpec,
    StorageSpec,
    supercloud_spec,
)
from repro.cluster.topology import FatTreeTopology

__all__ = [
    "Cluster",
    "ClusterSpec",
    "FatTreeTopology",
    "GpuDevice",
    "GpuSpec",
    "Node",
    "NodeSpec",
    "Partition",
    "PartitionError",
    "PartitionLayout",
    "StorageSpec",
    "supercloud_spec",
]
