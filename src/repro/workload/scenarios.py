"""Named what-if workload scenarios.

The paper closes by predicting how AI-centric workloads will keep
shifting.  These presets make that shift explorable: each returns a
:class:`~repro.workload.generator.WorkloadConfig` whose knobs deviate
from the calibrated paper workload in one interpretable direction, so
any figure, opportunity study, or capacity plan can be re-run under
the alternative future.
"""

from __future__ import annotations

import dataclasses

from repro.errors import WorkloadError
from repro.workload.calibration import GeneratorKnobs
from repro.workload.generator import WorkloadConfig


def _knobs(**overrides) -> GeneratorKnobs:
    return dataclasses.replace(GeneratorKnobs(), **overrides)


def paper_scenario(scale: float = 0.1, seed: int = 20220214) -> WorkloadConfig:
    """The calibrated reproduction of the paper's workload."""
    return WorkloadConfig(scale=scale, seed=seed)


def training_heavy_scenario(scale: float = 0.1, seed: int = 20220214) -> WorkloadConfig:
    """Production training farm: mature long runs, more multi-GPU.

    Models a site whose users graduated from exploration: mature jobs
    dominate, jobs run longer, and distributed training is routine.
    """
    knobs = _knobs(
        class_given_interface={
            "interactive": {"mature": 0.25, "exploratory": 0.05, "development": 0.30, "ide": 0.40},
            "map-reduce": {"mature": 0.80, "exploratory": 0.0005, "development": 0.1990, "ide": 0.0005},
            "batch": {"mature": 0.80, "exploratory": 0.08, "development": 0.11, "ide": 0.01},
            "other": {"mature": 0.80, "exploratory": 0.10, "development": 0.09, "ide": 0.01},
        },
        user_runtime_scale_median_s=420.0 * 60.0,
        gpu_count_by_category={
            "single": {1: 1.0},
            "dual": {1: 0.70, 2: 0.30},
            "medium": {1: 0.55, 2: 0.30, 4: 0.10, 6: 0.03, 8: 0.02},
            "large": {1: 0.45, 2: 0.25, 4: 0.12, 8: 0.10, 10: 0.04, 12: 0.02, 16: 0.02},
        },
    )
    return WorkloadConfig(scale=scale, seed=seed, knobs=knobs)


def exploration_surge_scenario(scale: float = 0.1, seed: int = 20220214) -> WorkloadConfig:
    """A hyper-parameter-search boom: exploratory jobs dominate.

    The direction the paper's Sec. VI warns about — non-mature work
    swallowing the machine.
    """
    knobs = _knobs(
        class_given_interface={
            "interactive": {"mature": 0.05, "exploratory": 0.10, "development": 0.25, "ide": 0.60},
            "map-reduce": {"mature": 0.60, "exploratory": 0.0005, "development": 0.3990, "ide": 0.0005},
            "batch": {"mature": 0.35, "exploratory": 0.40, "development": 0.23, "ide": 0.02},
            "other": {"mature": 0.35, "exploratory": 0.45, "development": 0.18, "ide": 0.02},
        },
        deadline_windows=((10.0, 20.0, 2.5), (50.0, 60.0, 2.5), (90.0, 100.0, 2.5)),
    )
    return WorkloadConfig(scale=scale, seed=seed, knobs=knobs)


def interactive_campus_scenario(scale: float = 0.1, seed: int = 20220214) -> WorkloadConfig:
    """A teaching/novice-heavy site: notebooks everywhere.

    Interactive sessions triple; the IDE GPU-hour sink the paper
    highlights grows accordingly — the stress case for the
    checkpoint/state-saving recommendation.
    """
    knobs = _knobs(
        global_interface_shares=(0.01, 0.24, 0.17, 0.58),
        quick_job_fraction=0.30,
    )
    return WorkloadConfig(scale=scale, seed=seed, knobs=knobs)


#: Registry of scenario factories.
SCENARIOS = {
    "paper": paper_scenario,
    "training_heavy": training_heavy_scenario,
    "exploration_surge": exploration_surge_scenario,
    "interactive_campus": interactive_campus_scenario,
}


def make_scenario(name: str, scale: float = 0.1, seed: int = 20220214) -> WorkloadConfig:
    """Build a scenario config by name."""
    if name not in SCENARIOS:
        raise WorkloadError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    return SCENARIOS[name](scale=scale, seed=seed)
