"""Fig 3: runtime and queue-wait CDFs of GPU vs CPU jobs."""

from repro.figures.registry import run_figure


def test_fig03_runtime_and_wait_cdfs(benchmark, dataset):
    result = benchmark(run_figure, "fig03", dataset)
    # shape: GPU jobs run longer but wait less than CPU jobs
    assert result.get("GPU runtime median").measured > result.get("CPU runtime median").measured
    assert (
        result.get("GPU jobs waiting <2% of service").measured
        > result.get("CPU jobs waiting <2% of service").measured
    )
