"""Legacy setup shim.

This environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets pip fall back to the legacy
``setup.py develop`` path: ``pip install -e . --no-use-pep517``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
