"""Runtime node and GPU state with strict allocation accounting.

The scheduler places jobs onto :class:`Node` objects.  Nodes enforce
the paper's sharing policy: CPU cores and memory may be divided among
co-located jobs, but each GPU is exclusively owned by at most one job
("Supercloud does not co-locate jobs on the same GPU at this point").
Violations raise :class:`~repro.errors.SchedulerError` — these are the
invariants the property-based tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.errors import SchedulerError


@dataclass
class GpuDevice:
    """One physical GPU; ``owner_job`` is None while idle."""

    node_index: int
    device_index: int
    owner_job: int | None = None

    @property
    def is_free(self) -> bool:
        return self.owner_job is None

    def acquire(self, job_id: int) -> None:
        if self.owner_job is not None:
            raise SchedulerError(
                f"GPU {self.node_index}:{self.device_index} already owned by "
                f"job {self.owner_job}, cannot assign job {job_id}"
            )
        self.owner_job = job_id

    def release(self, job_id: int) -> None:
        if self.owner_job != job_id:
            raise SchedulerError(
                f"job {job_id} does not own GPU {self.node_index}:{self.device_index} "
                f"(owner: {self.owner_job})"
            )
        self.owner_job = None


@dataclass
class Allocation:
    """Resources a job holds on one node."""

    job_id: int
    cores: int
    memory_gb: float
    gpu_indices: tuple[int, ...]


class Node:
    """Mutable state of one compute node."""

    def __init__(self, index: int, spec: NodeSpec) -> None:
        self.index = index
        self.spec = spec
        self.gpus = [GpuDevice(index, i) for i in range(spec.gpus_per_node)]
        self.free_cores = spec.physical_cores
        self.free_memory_gb = spec.ram_gb
        self.allocations: dict[int, Allocation] = {}
        #: False while the node is down for repair (failure injection).
        self.available = True

    # ------------------------------------------------------------------
    @property
    def free_gpus(self) -> int:
        return sum(1 for g in self.gpus if g.is_free)

    @property
    def used_gpus(self) -> int:
        return len(self.gpus) - self.free_gpus

    def can_fit(self, cores: int, memory_gb: float, gpus: int) -> bool:
        """Check whether a request fits in the node's free resources."""
        return (
            self.available
            and cores <= self.free_cores
            and memory_gb <= self.free_memory_gb
            and gpus <= self.free_gpus
        )

    def allocate(self, job_id: int, cores: int, memory_gb: float, gpus: int) -> Allocation:
        """Carve out resources for a job; raises if they do not fit."""
        if job_id in self.allocations:
            raise SchedulerError(f"job {job_id} already allocated on node {self.index}")
        if not self.can_fit(cores, memory_gb, gpus):
            raise SchedulerError(
                f"node {self.index} cannot fit request "
                f"(cores={cores}/{self.free_cores}, mem={memory_gb}/{self.free_memory_gb}, "
                f"gpus={gpus}/{self.free_gpus}) for job {job_id}"
            )
        taken: list[int] = []
        for gpu in self.gpus:
            if len(taken) == gpus:
                break
            if gpu.is_free:
                gpu.acquire(job_id)
                taken.append(gpu.device_index)
        self.free_cores -= cores
        self.free_memory_gb -= memory_gb
        allocation = Allocation(job_id, cores, memory_gb, tuple(taken))
        self.allocations[job_id] = allocation
        return allocation

    def release(self, job_id: int) -> None:
        """Return a job's resources to the free pool."""
        allocation = self.allocations.pop(job_id, None)
        if allocation is None:
            raise SchedulerError(f"job {job_id} holds nothing on node {self.index}")
        self.free_cores += allocation.cores
        self.free_memory_gb += allocation.memory_gb
        for device_index in allocation.gpu_indices:
            self.gpus[device_index].release(job_id)

    def check_invariants(self) -> None:
        """Assert conservation of cores/memory/GPUs (test hook)."""
        used_cores = sum(a.cores for a in self.allocations.values())
        used_mem = sum(a.memory_gb for a in self.allocations.values())
        owned = sum(len(a.gpu_indices) for a in self.allocations.values())
        if used_cores + self.free_cores != self.spec.physical_cores:
            raise SchedulerError(f"core accounting broken on node {self.index}")
        if abs(used_mem + self.free_memory_gb - self.spec.ram_gb) > 1e-6:
            raise SchedulerError(f"memory accounting broken on node {self.index}")
        if owned != self.used_gpus:
            raise SchedulerError(f"GPU accounting broken on node {self.index}")


class Cluster:
    """All nodes of the modeled system, with whole-cluster queries."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.nodes = [Node(i, spec.node) for i in range(spec.num_nodes)]

    @property
    def free_gpus(self) -> int:
        return sum(n.free_gpus for n in self.nodes)

    @property
    def used_gpus(self) -> int:
        return sum(n.used_gpus for n in self.nodes)

    @property
    def free_cores(self) -> int:
        return sum(n.free_cores for n in self.nodes)

    def utilization(self) -> dict[str, float]:
        """Fraction of GPUs/cores/memory currently allocated."""
        total_mem = self.spec.num_nodes * self.spec.node.ram_gb
        free_mem = sum(n.free_memory_gb for n in self.nodes)
        return {
            "gpu": 1.0 - self.free_gpus / max(self.spec.total_gpus, 1),
            "cores": 1.0 - self.free_cores / max(self.spec.total_cores, 1),
            "memory": 1.0 - free_mem / max(total_mem, 1e-9),
        }

    def check_invariants(self) -> None:
        for node in self.nodes:
            node.check_invariants()
