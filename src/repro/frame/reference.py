"""Naive row-at-a-time reference implementations of the grouped ops.

These are the original (pre-vectorization) engine bodies, kept verbatim
as executable specifications: the property tests assert that the
vectorized kernels in :mod:`repro.frame.groupby` / :class:`Table`
produce identical results, and ``benchmarks/bench_frame.py`` measures
the speedup against them.  They are not exported through the package
namespace and should never be called from production paths.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame.table import Table, _unwrap


def naive_group_index(table: Table, keys: Sequence[str]) -> dict[tuple[Any, ...], np.ndarray]:
    """Per-row dict bucketing: group key tuple -> row indices."""
    columns = [table.column(k) for k in keys]
    buckets: dict[tuple[Any, ...], list[int]] = {}
    for i in range(table.num_rows):
        key = tuple(_unwrap(col[i]) for col in columns)
        buckets.setdefault(key, []).append(i)
    return {k: np.asarray(v, dtype=np.intp) for k, v in buckets.items()}


def naive_aggregate(
    table: Table, keys: Sequence[str], spec: Mapping[str, Sequence[str] | str]
) -> Table:
    """Row-loop group-by + per-bucket reduction via ``Table.from_rows``."""
    from repro.frame.groupby import _BUILTIN_REDUCERS

    normalized = []
    for column, reducers in spec.items():
        if isinstance(reducers, str):
            reducers = [reducers]
        for name in reducers:
            if name not in _BUILTIN_REDUCERS:
                raise FrameError(
                    f"unknown reducer {name!r}; choose from {sorted(_BUILTIN_REDUCERS)}"
                )
            normalized.append((column, name, _BUILTIN_REDUCERS[name]))

    rows = []
    for key, idx in naive_group_index(table, keys).items():
        row: dict[str, Any] = dict(zip(keys, key))
        for column, name, fn in normalized:
            row[f"{column}_{name}"] = fn(table.column(column)[idx])
        rows.append(row)
    return Table.from_rows(rows)


def naive_sizes(table: Table, keys: Sequence[str]) -> Table:
    rows = [
        dict(zip(keys, k), count=len(idx))
        for k, idx in naive_group_index(table, keys).items()
    ]
    return Table.from_rows(rows)


def naive_value_counts(table: Table, name: str) -> Table:
    counts: dict[Any, int] = {}
    for value in table.column(name):
        key = _unwrap(value)
        counts[key] = counts.get(key, 0) + 1
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return Table.from_rows([{name: value, "count": count} for value, count in ordered])


def naive_pivot(
    table: Table, index: str, columns: str, values: str, reducer: str = "sum"
) -> Table:
    from repro.frame.groupby import _BUILTIN_REDUCERS

    if reducer not in _BUILTIN_REDUCERS:
        raise FrameError(f"unknown reducer {reducer!r}")
    fn = _BUILTIN_REDUCERS[reducer]
    buckets: dict[Any, dict[Any, list]] = {}
    column_order: dict[Any, None] = {}
    idx_col = table.column(index)
    col_col = table.column(columns)
    val_col = table.column(values)
    for i in range(table.num_rows):
        row_key = _unwrap(idx_col[i])
        col_key = _unwrap(col_col[i])
        column_order.setdefault(col_key, None)
        buckets.setdefault(row_key, {}).setdefault(col_key, []).append(val_col[i])
    fill = 0 if reducer in ("sum", "count") else None
    rows = []
    for row_key, cells in buckets.items():
        row: dict[str, Any] = {index: row_key}
        for col_key in column_order:
            bucket = cells.get(col_key)
            row[str(col_key)] = fn(np.asarray(bucket)) if bucket else fill
        rows.append(row)
    return Table.from_rows(rows)


def naive_join(
    left: Table, other: Table, on: str, how: str = "inner", suffix: str = "_right"
) -> Table:
    """Python hash-loop equality join (unique right key)."""
    if how not in ("inner", "left"):
        raise FrameError(f"unsupported join type {how!r}")
    right_keys = other.column(on)
    lookup: dict[Any, int] = {}
    for i, key in enumerate(right_keys):
        key = _unwrap(key)
        if key in lookup:
            raise FrameError(f"join key {on!r} is not unique in right table ({key!r})")
        lookup[key] = i

    left_idx: list[int] = []
    right_idx: list[int] = []
    for i, key in enumerate(left.column(on)):
        j = lookup.get(_unwrap(key))
        if j is not None:
            left_idx.append(i)
            right_idx.append(j)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(-1)

    result = left.take(np.asarray(left_idx, dtype=np.intp))
    right_rows = np.asarray(right_idx, dtype=np.intp)
    matched = right_rows >= 0
    for name in other.column_names:
        if name == on:
            continue
        out_name = name if name not in left.column_names else name + suffix
        source = other.column(name)
        if matched.all():
            values = source[right_rows]
        else:
            values = np.empty(len(right_rows), dtype=object)
            values[matched] = source[right_rows[matched]]
            values[~matched] = None
        result = result.with_column(out_name, values)
    return result
