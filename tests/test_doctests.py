"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro
import repro.frame
import repro.plot


@pytest.mark.parametrize(
    "module",
    [repro.frame, repro.plot],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_package_quickstart_doctest():
    # the top-level example generates a tiny dataset (~2 s)
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 2
