"""Checkpoint/restart cost model (paper Sec. VI takeaway).

"A considerable number of jobs ... are development or IDE jobs that
run until they encounter a failure or timeout.  To ensure that these
jobs do not lose their state, there is a growing need for ...
low-overhead checkpoint/restart mechanisms."

Model: a job checkpoints every ``interval_s``; one checkpoint costs
``model_size_gb / write_bandwidth``.  A job killed by timeout/failure
loses the work since its last checkpoint.  The classic Young/Daly
interval minimises (overhead + expected loss) given the mean time to
interruption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table

#: Exit conditions that destroy in-memory state.
LOSSY_EXITS = ("timeout", "failed", "node_failure")


@dataclass(frozen=True)
class CheckpointModel:
    """Cost parameters of one checkpointing configuration."""

    model_size_gb: float = 5.0
    write_bandwidth_gbps: float = 2.0  # shared SSD, GB/s
    interval_s: float = 600.0

    def __post_init__(self) -> None:
        if self.model_size_gb <= 0 or self.write_bandwidth_gbps <= 0 or self.interval_s <= 0:
            raise AnalysisError("checkpoint parameters must be positive")

    @property
    def checkpoint_cost_s(self) -> float:
        return self.model_size_gb / self.write_bandwidth_gbps

    def young_daly_interval(self, mtti_s: float) -> float:
        """Optimal interval sqrt(2 * C * MTTI) (Young's formula)."""
        if mtti_s <= 0:
            raise AnalysisError("mean time to interruption must be positive")
        return math.sqrt(2.0 * self.checkpoint_cost_s * mtti_s)

    def overhead_fraction(self, runtime_s: float) -> float:
        """Fraction of wall time spent writing checkpoints."""
        checkpoints = max(int(runtime_s / self.interval_s), 0)
        return checkpoints * self.checkpoint_cost_s / max(runtime_s, 1e-9)

    def expected_loss_s(self) -> float:
        """Expected lost work at an interruption: half an interval."""
        return self.interval_s / 2.0


@dataclass(frozen=True)
class CheckpointStudy:
    """Fleet-level accounting of lost vs protected work."""

    lossy_job_fraction: float
    lost_gpu_hours_without: float
    lost_gpu_hours_with: float
    overhead_gpu_hours: float
    model: CheckpointModel

    @property
    def net_saving_gpu_hours(self) -> float:
        return self.lost_gpu_hours_without - self.lost_gpu_hours_with - self.overhead_gpu_hours


def checkpoint_study(gpu_jobs: Table, model: CheckpointModel | None = None) -> CheckpointStudy:
    """Account the GPU hours lost by state-destroying exits.

    Without checkpointing, a timed-out or crashed job loses its whole
    run (the paper's IDE jobs "lose their state" at the timeout
    limit).  With checkpointing it loses half an interval, at the cost
    of periodic writes across *all* jobs.
    """
    model = model or CheckpointModel()
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    exits = np.asarray(list(gpu_jobs["exit_condition"]))
    runtimes = np.asarray(gpu_jobs["run_time_s"], dtype=float)
    gpus = np.asarray(gpu_jobs["num_gpus"], dtype=float)

    lossy = np.isin(exits, LOSSY_EXITS)
    lost_without = float((runtimes[lossy] * gpus[lossy]).sum() / 3600.0)
    lost_with = float((np.minimum(model.expected_loss_s(), runtimes[lossy]) * gpus[lossy]).sum() / 3600.0)
    overhead = float(
        sum(
            model.overhead_fraction(rt) * rt * g
            for rt, g in zip(runtimes, gpus)
        )
        / 3600.0
    )
    return CheckpointStudy(
        lossy_job_fraction=float(lossy.mean()),
        lost_gpu_hours_without=lost_without,
        lost_gpu_hours_with=lost_with,
        overhead_gpu_hours=overhead,
        model=model,
    )


def interval_sweep(gpu_jobs: Table, intervals_s=(120.0, 300.0, 600.0, 1800.0, 3600.0)) -> Table:
    """Net saving per checkpoint interval; one row per interval."""
    rows = []
    for interval in intervals_s:
        study = checkpoint_study(gpu_jobs, CheckpointModel(interval_s=interval))
        rows.append(
            {
                "interval_s": interval,
                "net_saving_gpu_hours": study.net_saving_gpu_hours,
                "overhead_gpu_hours": study.overhead_gpu_hours,
                "lost_with_gpu_hours": study.lost_gpu_hours_with,
            }
        )
    return Table.from_rows(rows)
