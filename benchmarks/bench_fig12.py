"""Fig 12: Spearman correlations of user activity vs behavior."""

from repro.figures.registry import run_figure


def test_fig12_correlations(benchmark, dataset):
    result = benchmark(run_figure, "fig12", dataset)
    # shape: expert users use GPUs better, but are no more predictable
    avg = result.get("njobs vs avg SM (high +)").measured
    cov = result.get("njobs vs SM CoV (< 0.5)").measured
    assert avg > cov
    assert cov < 0.5
