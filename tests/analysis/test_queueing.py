"""Tests for the analytic queueing models, including a cross-check of
the GPU-sharing simulator against Erlang C."""

import numpy as np
import pytest

from repro.analysis.queueing import (
    erlang_c,
    mgc_mean_wait,
    mmc_mean_wait,
    required_gpus_for_wait,
    workload_parameters,
)
from repro.errors import AnalysisError
from repro.opportunities.sharing_sim import GpuSharingSimulator, SharingJob


class TestErlangC:
    def test_single_server_equals_rho(self):
        # M/M/1: P(wait) = rho
        assert erlang_c(1, 0.5) == pytest.approx(0.5)
        assert erlang_c(1, 0.9) == pytest.approx(0.9)

    def test_saturated_always_waits(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_zero_load_never_waits(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_known_value(self):
        # textbook: c=2, a=1 -> C = 1/3
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_monotone_in_load(self):
        values = [erlang_c(8, a) for a in (1.0, 3.0, 5.0, 7.0)]
        assert values == sorted(values)

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            erlang_c(0, 1.0)
        with pytest.raises(AnalysisError):
            erlang_c(2, -1.0)


class TestMeanWaits:
    def test_mm1_formula(self):
        # M/M/1: Wq = rho/(mu - lambda); lambda=0.5, mu=1 -> Wq = 1
        assert mmc_mean_wait(0.5, 1.0, 1) == pytest.approx(1.0)

    def test_unstable_infinite(self):
        assert np.isinf(mmc_mean_wait(2.0, 1.0, 1))

    def test_mgc_reduces_to_mmc_at_scv_one(self):
        assert mgc_mean_wait(0.5, 1.0, 1.0, 1) == pytest.approx(
            mmc_mean_wait(0.5, 1.0, 1)
        )

    def test_heavy_tail_waits_longer(self):
        light = mgc_mean_wait(0.5, 1.0, 1.0, 1)
        heavy = mgc_mean_wait(0.5, 1.0, 8.0, 1)
        assert heavy == pytest.approx(4.5 * light)

    def test_deterministic_service_halves_wait(self):
        assert mgc_mean_wait(0.5, 1.0, 0.0, 1) == pytest.approx(
            0.5 * mmc_mean_wait(0.5, 1.0, 1)
        )


class TestSimulatorCrossCheck:
    def test_sharing_sim_matches_erlang_c(self):
        """The exclusive-mode sharing simulator IS an M/M/c queue when
        fed Poisson arrivals and exponential services; its mean wait
        must match the closed form."""
        rng = np.random.default_rng(42)
        arrival_rate, mean_service, servers = 0.08, 50.0, 5
        n = 6000
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, n))
        services = rng.exponential(mean_service, n)
        jobs = [
            SharingJob(float(a), float(max(s, 1e-6)), demand=100.0)
            for a, s in zip(arrivals, services)
        ]
        outcome = GpuSharingSimulator().run(jobs, num_gpus=servers, sharing=False)
        analytic = mmc_mean_wait(arrival_rate, mean_service, servers)
        assert outcome.mean_wait_s == pytest.approx(analytic, rel=0.25)


class TestWorkloadParameters:
    def test_on_generated_data(self, gpu_jobs):
        params = workload_parameters(gpu_jobs)
        assert params["arrival_rate_per_s"] > 0
        assert params["mean_service_s"] > 60.0
        # heavy-tailed runtimes: SCV far above exponential
        assert params["service_scv"] > 1.5
        assert params["offered_gpu_load"] > 0

    def test_offered_load_below_capacity(self, medium_dataset):
        """The paper's provisioning claim in queueing terms: offered
        GPU-Erlangs sit well below the installed GPU count."""
        params = workload_parameters(medium_dataset.gpu_jobs)
        assert params["offered_gpu_load"] < 0.8 * medium_dataset.spec.total_gpus

    def test_degenerate_inputs_rejected(self):
        from repro.frame import Table

        with pytest.raises(AnalysisError):
            workload_parameters(
                Table({"submit_time_s": [1.0], "run_time_s": [1.0], "num_gpus": [1]})
            )


class TestRequiredGpus:
    def test_more_servers_for_tighter_target(self):
        loose = required_gpus_for_wait(0.1, 100.0, 4.0, target_wait_s=300.0)
        tight = required_gpus_for_wait(0.1, 100.0, 4.0, target_wait_s=1.0)
        assert tight >= loose

    def test_at_least_offered_load(self):
        servers = required_gpus_for_wait(1.0, 10.0, 1.0, target_wait_s=60.0)
        assert servers >= 10

    def test_unreachable_rejected(self):
        with pytest.raises(AnalysisError):
            required_gpus_for_wait(1.0, 10.0, 1.0, target_wait_s=0.0, max_servers=11)
