"""On-disk artifact cache for pipeline sessions.

The paper's own operators materialize the combined dataset *once* and
run every analysis against that artifact; this module gives the
reproduction the same property.  A cache entry is keyed by a stable
content hash of ``(WorkloadConfig, MonitoringConfig, schema
version)`` and holds:

``manifest.json``
    schema version, key, and row counts used as an integrity check;
``jobs.csv`` / ``gpu_jobs.csv`` / ``per_gpu.csv``
    the frame tables, via :mod:`repro.frame.io`;
``timeseries.npz``
    the dense series store through the :mod:`repro.monitor.codec`
    compressed encoding (lossy only through its 0.25 % quantisation);
``records.pkl``
    the raw :class:`~repro.slurm.job.JobRecord` list (timeline and
    co-location analyses need the full records);
``config.pkl``
    the exact ``(WorkloadConfig, ClusterSpec)`` pair.

Figure results computed against an entry are cached next to it under
``<key>.figures/<figure_id>.pkl``.

Entries are written to a temp directory and atomically renamed into
place, so concurrent writers (``--workers N``) cannot publish a
half-written entry.  Any load failure — missing file, corrupt npz,
truncated pickle, schema mismatch — returns ``None`` and the caller
regenerates; a broken cache can never make a run fail.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any

from repro.frame import read_csv, write_csv
from repro.monitor.codec import load_store, save_store
from repro.monitor.collector import MonitoringConfig
from repro.obs import runtime as _obs_runtime
from repro.workload.generator import WorkloadConfig


def _count_cache_event(kind: str) -> None:
    """Mirror one cache operation into the ambient metrics registry
    and the flight recorder."""
    metrics = _obs_runtime.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_cache_events_total",
            help="artifact cache operations by kind",
            kind=kind,
        ).inc()
    _obs_runtime.record_event("cache", category="cache", kind=kind)

#: Bump when the dataset schema or the cache layout changes; every
#: existing entry is invalidated (its key no longer matches).
#: 2: WorkloadConfig grew ``partitions``/``cohorts`` (sharded builds).
SCHEMA_VERSION = 2

_TABLE_FILES = {"jobs": "jobs.csv", "gpu_jobs": "gpu_jobs.csv", "per_gpu": "per_gpu.csv"}


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else the XDG cache home."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "supercloud-repro"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def dataset_key(
    config: WorkloadConfig | None,
    monitoring: MonitoringConfig | None,
    interchange=None,
) -> str:
    """Stable content hash of the full pipeline configuration.

    ``None`` hashes like the corresponding default config, matching
    :func:`repro.dataset.generate_dataset` semantics; an ``interchange``
    of ``None`` (uncoupled islands, the historical behavior) keeps the
    legacy payload so existing cache entries stay valid.  The digest is
    identical across processes and interpreter restarts (no reliance
    on Python's salted ``hash``).
    """
    config = config or WorkloadConfig()
    monitoring = monitoring or MonitoringConfig()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "workload": _jsonable(dataclasses.asdict(config)),
        "monitoring": _jsonable(dataclasses.asdict(monitoring)),
    }
    if interchange is not None:
        payload["interchange"] = _jsonable(dataclasses.asdict(interchange))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


class DatasetCache:
    """A directory of immutable dataset (and figure-result) artifacts."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def entry_dir(self, key: str) -> Path:
        return self.root / key

    def has(self, key: str) -> bool:
        return (self.entry_dir(key) / "manifest.json").is_file()

    # ------------------------------------------------------------------
    # Dataset artifacts
    # ------------------------------------------------------------------
    def store(self, key: str, dataset) -> Path:
        """Persist a dataset; returns the entry directory.

        Publication is atomic: a temp directory is fully written, then
        renamed onto the key.  Losing the race to another writer is
        fine — entries for one key are interchangeable.
        """
        entry = self.entry_dir(key)
        if self.has(key):
            return entry
        _count_cache_event("dataset_store")
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=f".{key}-", dir=self.root))
        try:
            for attr, filename in _TABLE_FILES.items():
                write_csv(getattr(dataset, attr), tmp / filename)
            save_store(dataset.timeseries, tmp / "timeseries.npz")
            with (tmp / "records.pkl").open("wb") as fh:
                pickle.dump(dataset.records, fh, protocol=pickle.HIGHEST_PROTOCOL)
            with (tmp / "config.pkl").open("wb") as fh:
                pickle.dump((dataset.config, dataset.spec), fh, protocol=pickle.HIGHEST_PROTOCOL)
            manifest = {
                "schema_version": SCHEMA_VERSION,
                "key": key,
                "rows": {attr: getattr(dataset, attr).num_rows for attr in _TABLE_FILES},
                "num_series": len(dataset.timeseries),
                "num_records": len(dataset.records),
            }
            (tmp / "manifest.json").write_text(json.dumps(manifest, indent=1), encoding="utf-8")
            try:
                os.replace(tmp, entry)
            except OSError:
                # entry appeared concurrently (or non-empty dir on this
                # platform): keep the existing one.
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return entry

    def load(self, key: str):
        """Reconstruct a dataset, or ``None`` on any kind of failure."""
        from repro.dataset import SupercloudDataset

        entry = self.entry_dir(key)
        try:
            manifest = json.loads((entry / "manifest.json").read_text(encoding="utf-8"))
            if manifest.get("schema_version") != SCHEMA_VERSION or manifest.get("key") != key:
                return None
            tables = {attr: read_csv(entry / filename) for attr, filename in _TABLE_FILES.items()}
            for attr, table in tables.items():
                if table.num_rows != manifest["rows"][attr]:
                    return None
            store = load_store(entry / "timeseries.npz")
            if len(store) != manifest["num_series"]:
                return None
            with (entry / "records.pkl").open("rb") as fh:
                records = pickle.load(fh)
            if len(records) != manifest["num_records"]:
                return None
            with (entry / "config.pkl").open("rb") as fh:
                config, spec = pickle.load(fh)
        except Exception:
            _count_cache_event("dataset_load_failed")
            return None
        _count_cache_event("dataset_load")
        return SupercloudDataset(
            jobs=tables["jobs"],
            gpu_jobs=tables["gpu_jobs"],
            per_gpu=tables["per_gpu"],
            timeseries=store,
            records=records,
            spec=spec,
            config=config,
        )

    def evict(self, key: str) -> None:
        """Drop one entry and its figure results (no error if absent)."""
        shutil.rmtree(self.entry_dir(key), ignore_errors=True)
        shutil.rmtree(self.root / f"{key}.figures", ignore_errors=True)

    # ------------------------------------------------------------------
    # Figure-result artifacts
    # ------------------------------------------------------------------
    def _figure_path(self, key: str, figure_id: str) -> Path:
        # kept outside the dataset entry so figure writes can never
        # collide with the atomic publication of the entry itself
        return self.root / f"{key}.figures" / f"{figure_id}.pkl"

    def store_figure(self, key: str, figure_id: str, result) -> None:
        """Cache one figure result next to its dataset entry."""
        _count_cache_event("figure_store")
        path = self._figure_path(key, figure_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema_version": SCHEMA_VERSION, "result": result}
        fd, tmp = tempfile.mkstemp(prefix=f".{figure_id}-", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def load_figure(self, key: str, figure_id: str):
        """A cached figure result, or ``None``."""
        path = self._figure_path(key, figure_id)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            if payload.get("schema_version") != SCHEMA_VERSION:
                _count_cache_event("figure_miss")
                return None
            _count_cache_event("figure_hit")
            return payload["result"]
        except Exception:
            _count_cache_event("figure_miss")
            return None
