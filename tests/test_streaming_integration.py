"""End-to-end streaming integration: producers and consumers agree
with the materialized pipeline.

Each producer that grew a chunked emission path (monitor collector,
time-series store, accounting) must stay bit-identical to its
materialized output, and the figure producers that consume
``dataset.streaming_view()`` (fig03, fig04) must reproduce the
materialized comparisons — bit-for-bit for integer-count fractions,
within the sketch's documented rank error for quantiles.
"""

import numpy as np
import pytest

from repro.frame import ChunkedTable
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.slurm.accounting import accounting_chunked, accounting_table


class TestCollectorChunking:
    def _run_pipeline(self, summary_chunk_rows):
        from repro.pipeline import Session
        from repro.workload.generator import WorkloadConfig

        monitoring = MonitoringConfig(summary_chunk_rows=summary_chunk_rows)
        return Session(
            WorkloadConfig(scale=0.01, seed=303), monitoring=monitoring
        ).dataset()

    def test_chunked_collector_is_bit_identical(self):
        baseline = self._run_pipeline(None)
        chunked = self._run_pipeline(64)
        assert chunked.per_gpu.to_dict() == baseline.per_gpu.to_dict()
        assert chunked.gpu_jobs.to_dict() == baseline.gpu_jobs.to_dict()
        assert chunked.jobs.to_dict() == baseline.jobs.to_dict()

    def test_per_gpu_chunked_view(self):
        config = MonitoringConfig(summary_chunk_rows=2)
        collector = MonitoringCollector(config)
        chunked = collector.per_gpu_chunked()
        assert isinstance(chunked, ChunkedTable)


class TestTimeSeriesScan:
    def test_scan_table_matches_series(self, small_dataset):
        store = small_dataset.timeseries
        chunked = store.scan_table(chunk_rows=512)
        assert chunked.num_rows == store.total_samples()
        table = chunked.materialize()
        assert table.num_rows == store.total_samples()
        # Spot-check one series round-trips exactly.
        series = next(iter(store))
        rows = table.filter(
            lambda t: (np.asarray(t["job_id"]) == series.job_id)
            & (np.asarray(t["gpu_index"]) == series.gpu_index)
        )
        np.testing.assert_array_equal(np.asarray(rows["time_s"]), series.times_s)
        np.testing.assert_array_equal(np.asarray(rows["sm"]), series.metric("sm"))

    def test_streaming_moments_over_samples(self, small_dataset):
        store = small_dataset.timeseries
        if store.total_samples() == 0:
            pytest.skip("no dense series at this scale")
        moments = store.scan_table(chunk_rows=256).moments("sm")
        materialized = np.concatenate([s.metric("sm") for s in store])
        assert moments.count == materialized.size
        assert moments.mean() == pytest.approx(materialized.mean(), rel=1e-9)


class TestAccountingChunked:
    def test_matches_accounting_table(self, small_dataset):
        records = small_dataset.records
        chunked = accounting_chunked(records, chunk_rows=37)
        assert chunked.num_rows == len(records)
        assert chunked.materialize().to_dict() == accounting_table(records).to_dict()


class TestStreamingFigures:
    def test_fig03_streaming_view(self, small_dataset):
        from repro.figures import fig03

        exact = fig03.run(small_dataset)
        streamed = fig03.run(small_dataset.streaming_view(chunk_rows=256))
        for ours, theirs in zip(exact.comparisons, streamed.comparisons):
            assert ours.name == theirs.name
            if "<1 min" in ours.name or ">1 min" in ours.name:
                assert ours.measured == theirs.measured, ours.name
            else:
                assert theirs.measured == pytest.approx(
                    ours.measured, rel=0.05, abs=0.75
                ), ours.name

    def test_fig04_streaming_view(self, small_dataset):
        from repro.figures import fig04

        exact = fig04.run(small_dataset)
        streamed = fig04.run(small_dataset.streaming_view(chunk_rows=256))
        for ours, theirs in zip(exact.comparisons, streamed.comparisons):
            assert theirs.measured == pytest.approx(
                ours.measured, rel=0.05, abs=0.75
            ), ours.name

    def test_streaming_view_shares_backing_data(self, small_dataset):
        view = small_dataset.streaming_view(chunk_rows=128)
        assert isinstance(view.jobs, ChunkedTable)
        assert isinstance(view.gpu_jobs, ChunkedTable)
        assert view.timeseries is small_dataset.timeseries
        assert view.gpu_jobs.materialize().to_dict() == small_dataset.gpu_jobs.to_dict()

    def test_figure_plots_accept_sketches(self, small_dataset):
        """The SVG renderer only needs values/probabilities, which the
        sketch duck-types."""
        from repro.figures import fig04
        from repro.figures.plots import figure_charts

        result = fig04.run(small_dataset.streaming_view(chunk_rows=256))
        charts = figure_charts(result)
        assert charts


class TestColumnHelpersDispatch:
    def test_column_ecdf_exact_vs_sketch(self, small_dataset):
        from repro.analysis.stats import column_ecdf

        exact = column_ecdf(small_dataset.gpu_jobs, "sm_mean")
        sketched = column_ecdf(
            small_dataset.gpu_jobs.to_chunked(chunk_rows=64), "sm_mean"
        )
        assert sketched.num_samples == exact.num_samples
        assert sketched.median() == pytest.approx(exact.median(), rel=0.05, abs=0.75)

    def test_column_fraction_bit_exact(self, small_dataset):
        from repro.analysis.stats import column_fraction

        exact = column_fraction(
            small_dataset.gpu_jobs, "run_time_s", lambda v: v > 300.0
        )
        streamed = column_fraction(
            small_dataset.gpu_jobs.to_chunked(chunk_rows=31),
            "run_time_s",
            lambda v: v > 300.0,
        )
        assert exact == streamed
