"""Tests for Table.value_counts and Table.pivot."""

import pytest

from repro.errors import FrameError
from repro.frame import Table


@pytest.fixture
def table():
    return Table(
        {
            "cls": ["mature", "ide", "mature", "dev", "mature", "ide"],
            "interface": ["other", "interactive", "batch", "other", "other", "interactive"],
            "hours": [1.0, 12.0, 2.0, 0.5, 3.0, 6.0],
        }
    )


class TestValueCounts:
    def test_counts_sorted_descending(self, table):
        counts = table.value_counts("cls")
        assert counts.row(0) == {"cls": "mature", "count": 3}
        assert list(counts["count"]) == [3, 2, 1]

    def test_ties_broken_by_value(self):
        t = Table({"x": ["b", "a"]})
        counts = t.value_counts("x")
        assert list(counts["x"]) == ["a", "b"]

    def test_numeric_column(self):
        t = Table({"gpus": [1, 2, 1, 1]})
        counts = t.value_counts("gpus")
        assert counts.row(0) == {"gpus": 1, "count": 3}


class TestPivot:
    def test_sum_pivot(self, table):
        pivoted = table.pivot("cls", "interface", "hours", reducer="sum")
        rows = {r["cls"]: r for r in pivoted.iter_rows()}
        assert rows["mature"]["other"] == pytest.approx(4.0)
        assert rows["mature"]["batch"] == pytest.approx(2.0)
        assert rows["ide"]["interactive"] == pytest.approx(18.0)

    def test_missing_cells_zero_for_sum(self, table):
        pivoted = table.pivot("cls", "interface", "hours", reducer="sum")
        rows = {r["cls"]: r for r in pivoted.iter_rows()}
        assert rows["ide"]["other"] == 0

    def test_missing_cells_none_for_mean(self, table):
        pivoted = table.pivot("cls", "interface", "hours", reducer="mean")
        rows = {r["cls"]: r for r in pivoted.iter_rows()}
        assert rows["ide"]["other"] is None
        assert rows["mature"]["other"] == pytest.approx(2.0)

    def test_count_pivot(self, table):
        pivoted = table.pivot("cls", "interface", "hours", reducer="count")
        rows = {r["cls"]: r for r in pivoted.iter_rows()}
        assert rows["mature"]["other"] == 2

    def test_column_order_first_seen(self, table):
        pivoted = table.pivot("cls", "interface", "hours")
        assert pivoted.column_names == ("cls", "other", "interactive", "batch")

    def test_unknown_reducer_rejected(self, table):
        with pytest.raises(FrameError):
            table.pivot("cls", "interface", "hours", reducer="mode")

    def test_pivot_on_generated_data(self, gpu_jobs):
        pivoted = gpu_jobs.pivot("lifecycle_class", "interface", "gpu_hours", "sum")
        total = sum(
            sum(v for k, v in row.items() if k != "lifecycle_class")
            for row in pivoted.iter_rows()
        )
        expected = sum(float(v) for v in gpu_jobs["gpu_hours"])
        assert total == pytest.approx(expected, rel=1e-9)
