"""Two-tier GPU fleet what-if (paper Sec. VI / VIII).

Recommendation II to system operators: "Instead of buying only the
latest-and-fastest GPUs, it might be more cost-effective to mix them
with some less-expensive, less-powerful ... GPUs for exploratory and
IDE jobs."  This model prices that proposal:

* the fleet is split into a fast tier (V100-class, price 1.0) and a
  slow tier (``relative_speed`` < 1 at ``relative_price`` < 1);
* a routing policy sends selected life-cycle classes to the slow tier;
* compute-bound work slows by ``1/relative_speed``; development and
  IDE jobs barely use the device (Fig 16) so their wall time is
  assumed unchanged;
* output: GPU-hour cost per tier, total cost saving, and the added
  wall-clock time experienced by rerouted jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table

#: Classes whose jobs barely touch the GPU; routing them to a slower
#: device does not slow them down (Fig 16: median SM = 0).
INSENSITIVE_CLASSES = ("development", "ide")


@dataclass(frozen=True)
class TierSpec:
    """One device tier."""

    name: str
    relative_speed: float = 1.0
    relative_price: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.relative_speed <= 1.5:
            raise AnalysisError(f"implausible relative speed {self.relative_speed}")
        if self.relative_price <= 0:
            raise AnalysisError("price must be positive")


@dataclass(frozen=True)
class TieringOutcome:
    """Cost/latency outcome of one routing policy."""

    routed_classes: tuple[str, ...]
    baseline_cost: float
    tiered_cost: float
    routed_job_fraction: float
    routed_hour_fraction: float
    mean_slowdown_routed: float

    @property
    def cost_saving_fraction(self) -> float:
        if self.baseline_cost == 0:
            return 0.0
        return 1.0 - self.tiered_cost / self.baseline_cost


def tiering_study(
    gpu_jobs: Table,
    slow_tier: TierSpec = TierSpec("slow", relative_speed=0.5, relative_price=0.35),
    routed_classes: tuple[str, ...] = ("exploratory", "development", "ide"),
) -> TieringOutcome:
    """Evaluate routing the given classes to the slow tier.

    Cost unit: fast-tier GPU hours.  A routed compute-bound job
    stretches by ``1/speed`` but each of its hours costs
    ``relative_price``; insensitive classes keep their wall time.
    """
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    classes = np.asarray(list(gpu_jobs["lifecycle_class"]))
    hours = np.asarray(gpu_jobs["gpu_hours"], dtype=float)
    baseline_cost = float(hours.sum())

    routed = np.isin(classes, routed_classes)
    insensitive = np.isin(classes, INSENSITIVE_CLASSES)
    stretch = np.where(routed & ~insensitive, 1.0 / slow_tier.relative_speed, 1.0)
    stretch = np.where(routed & insensitive, 1.0, stretch)

    tiered_hours = hours * stretch
    cost = np.where(routed, tiered_hours * slow_tier.relative_price, hours)
    slowdowns = stretch[routed]
    return TieringOutcome(
        routed_classes=tuple(routed_classes),
        baseline_cost=baseline_cost,
        tiered_cost=float(cost.sum()),
        routed_job_fraction=float(routed.mean()),
        routed_hour_fraction=float(hours[routed].sum() / hours.sum()),
        mean_slowdown_routed=float(slowdowns.mean()) if slowdowns.size else 1.0,
    )


def tiering_sweep(
    gpu_jobs: Table,
    speeds=(0.3, 0.5, 0.7),
    prices=(0.2, 0.35, 0.5),
) -> Table:
    """Sweep slow-tier design points; one row per (speed, price)."""
    rows = []
    for speed in speeds:
        for price in prices:
            outcome = tiering_study(gpu_jobs, TierSpec("slow", speed, price))
            rows.append(
                {
                    "relative_speed": speed,
                    "relative_price": price,
                    "cost_saving_fraction": outcome.cost_saving_fraction,
                    "mean_slowdown_routed": outcome.mean_slowdown_routed,
                    "routed_hour_fraction": outcome.routed_hour_fraction,
                }
            )
    return Table.from_rows(rows)
