"""The user population model.

Users differ along every axis the paper measures (Sec. IV):

* **activity weight** — bounded-Pareto, so a few "expert" users submit
  most jobs (top 5 % of users submit 44 % of jobs);
* **runtime scale** — anti-correlated with weight (heavy submitters
  run shorter jobs), reconciling the pooled 30-minute median (Fig 3a)
  with the 392-minute median of per-user averages (Fig 10);
* **life-cycle / interface mixes** — Dirichlet draws around the global
  shares, giving the user-to-user spread of Fig 17;
* **utilization multiplier** — positively correlated with weight
  (expert users use GPUs more efficiently, Fig 12);
* **GPU-size category** — bounds the largest job a user submits
  (Sec. V: 60 % of users run at least one multi-GPU job).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions import BoundedPareto, Categorical
from repro.errors import WorkloadError
from repro.workload.calibration import GeneratorKnobs


@dataclass
class UserProfile:
    """Static behavioral parameters of one user."""

    name: str
    weight: float
    runtime_scale_s: float
    runtime_cov: float
    class_probs: dict[str, float]
    interface_probs: dict[str, float]
    util_multiplier: float
    gpu_category: str
    gpu_count_dist: Categorical
    #: Memory-bound workloads cluster in a few users (graph analytics,
    #: embedding-table jobs); most users never submit one.
    memory_intensive_user: bool = False

    def sample_interface(self, rng: np.random.Generator) -> str:
        labels = list(self.interface_probs)
        probs = np.asarray([self.interface_probs[k] for k in labels])
        return labels[int(rng.choice(len(labels), p=probs / probs.sum()))]

    def sample_class(self, rng: np.random.Generator, interface: str, knobs: GeneratorKnobs) -> str:
        """Life-cycle class: interface-conditional base, tilted by the
        user's own propensities.

        ``class_probs`` is a *tilt* centered on uniform (mean 1/4 per
        class), so the population-average class mix stays at the base
        probabilities while individual users deviate widely (Fig 17).
        """
        base = knobs.class_given_interface[interface]
        labels = list(base)
        weights = np.asarray([base[k] * max(self.class_probs.get(k, 0.0), 1e-4) for k in labels])
        if weights.sum() <= 0:
            weights = np.asarray([base[k] for k in labels])
        weights = weights / weights.sum()
        return labels[int(rng.choice(len(labels), p=weights))]

    def sample_gpu_count(self, rng: np.random.Generator) -> int:
        return int(self.gpu_count_dist.sample(rng))


class UserPopulation:
    """Builds and holds the full set of user profiles."""

    def __init__(
        self,
        num_users: int,
        knobs: GeneratorKnobs,
        rng: np.random.Generator,
    ) -> None:
        if num_users < 2:
            raise WorkloadError("need at least two users")
        self.knobs = knobs
        weight_dist = BoundedPareto(
            knobs.user_weight_alpha, knobs.user_weight_range[0], knobs.user_weight_range[1]
        )
        weights = np.sort(np.asarray(weight_dist.sample(rng, num_users)))[::-1]
        median_weight = float(np.median(weights))
        self.profiles = [
            self._build_profile(i, float(w), float(w) / median_weight, rng)
            for i, w in enumerate(weights)
        ]
        self._assign_gpu_categories()
        for profile in self.profiles:
            rel = profile.weight / median_weight
            # Heavy submitters run shorter jobs...
            profile.runtime_scale_s *= rel ** (-knobs.runtime_weight_exponent)
            # ...and use the GPUs they get more efficiently (Fig 12).
            profile.util_multiplier = float(
                np.clip(profile.util_multiplier * rel**knobs.util_weight_exponent, 0.2, 2.2)
            )

    def _build_profile(
        self, index: int, weight: float, rel_weight: float, rng: np.random.Generator
    ) -> UserProfile:
        knobs = self.knobs
        # Heavy users submit many workflows, so their class/interface
        # mixes sit near the population average; light users can be
        # extreme.  Concentration grows with relative weight, which
        # pins the pooled mixes (Fig 5, Fig 15a) without flattening the
        # user-level spread (Fig 17 is dominated by the many light
        # users).
        concentration_boost = 1.0 + 2.5 * np.log1p(max(rel_weight - 1.0, 0.0))
        class_labels = ("mature", "exploratory", "development", "ide")
        class_tilt = rng.dirichlet(
            np.full(len(class_labels), knobs.class_mix_concentration * concentration_boost)
        )
        interface_labels = ("map-reduce", "batch", "interactive", "other")
        global_interface = np.asarray(knobs.global_interface_shares)
        interface_draw = rng.dirichlet(
            global_interface
            * len(interface_labels)
            * knobs.interface_mix_concentration
            * concentration_boost
        )
        runtime_scale = float(
            rng.lognormal(np.log(knobs.user_runtime_scale_median_s), knobs.user_runtime_scale_sigma)
        )
        runtime_cov = float(
            rng.lognormal(np.log(knobs.user_runtime_cov_median), knobs.user_runtime_cov_spread)
        )
        placeholder = Categorical([1], [1.0])
        return UserProfile(
            name=f"user_{index:04d}",
            weight=weight,
            runtime_scale_s=runtime_scale,
            runtime_cov=runtime_cov,
            class_probs=dict(zip(class_labels, class_tilt)),
            interface_probs=dict(zip(interface_labels, interface_draw)),
            util_multiplier=float(rng.lognormal(-0.25, knobs.util_user_noise_sigma)),
            gpu_category="single",
            gpu_count_dist=placeholder,
            memory_intensive_user=bool(rng.random() < knobs.memory_intensive_user_fraction),
        )

    def _assign_gpu_categories(self) -> None:
        """Deterministic weight-ranked category assignment.

        The heaviest 5.2% of users are "large" (run 9+ GPU jobs), the
        next 7.8% "medium" (3-8 GPUs), the next 47% "dual", the rest
        single-GPU only.  Ranking by weight pins the pooled job-size
        mix (Fig 13) and the user fractions (Sec. V) simultaneously,
        without sampling noise from which users happen to be heavy.
        """
        knobs = self.knobs
        order = sorted(range(len(self.profiles)), key=lambda i: -self.profiles[i].weight)
        n = len(self.profiles)
        # user_gpu_categories is ordered smallest-capability first; the
        # probs vector gives (single, dual, medium, large) fractions.
        ordered_categories = list(reversed(knobs.user_gpu_categories))  # large first
        ordered_sizes = list(reversed(list(knobs.user_gpu_category_probs)))
        start = 0
        for category, frac in zip(ordered_categories, ordered_sizes):
            count = int(round(frac * n))
            for rank in range(start, min(start + count, n)):
                profile = self.profiles[order[rank]]
                profile.gpu_category = category
            start += count
        for rank in range(start, n):  # rounding remainder -> single
            self.profiles[order[rank]].gpu_category = "single"
        for profile in self.profiles:
            count_map = knobs.gpu_count_by_category[profile.gpu_category]
            profile.gpu_count_dist = Categorical(list(count_map), list(count_map.values()))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.profiles)

    def job_allocation(self, total_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """Number of jobs per user: multinomial over activity weights,
        with every user guaranteed at least one job."""
        weights = np.asarray([p.weight for p in self.profiles])
        counts = rng.multinomial(max(total_jobs - len(self.profiles), 0), weights / weights.sum())
        return counts + 1
