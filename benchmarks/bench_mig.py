"""Opportunity study: static MIG partitioning (Sec. VIII)."""

from repro.opportunities.mig import best_partition, partition_sweep


def test_mig_partition_sweep(benchmark, dataset):
    sweep = benchmark(partition_sweep, dataset.gpu_jobs, "mean")
    assert sweep.num_rows >= 6


def test_mig_best_partition(benchmark, dataset):
    best = benchmark(best_partition, dataset.gpu_jobs, "mean")
    # the low-utilization finding translates into real MIG capacity
    assert best.capacity_multiplier > 1.5
