"""Tests for the command-line interface."""

import pytest

from repro.cli import DatasetOptions, build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs from touching the user-level artifact cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.scale == 0.1
        assert args.output == "dataset"

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig04", "--scale", "0.05"])
        assert args.figure_id == "fig04"
        assert args.scale == 0.05

    def test_session_flag_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.workers is None  # defers to $REPRO_WORKERS, else serial
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_workers_default_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        args = build_parser().parse_args(["report"])
        session = DatasetOptions.from_args(args).session()
        assert session.workers == 3

    def test_bench_list(self, capsys):
        rc = main(["bench", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "benchmarks/bench_frame.py" in out
        assert "benchmarks/bench_dataset_build.py" in out

    def test_bench_unknown_target(self, capsys):
        rc = main(["bench", "no-such-bench"])
        assert rc == 2
        assert "unknown bench target" in capsys.readouterr().out

    def test_session_flags_parsed(self, tmp_path):
        args = build_parser().parse_args(
            ["report", "--workers", "4", "--cache-dir", str(tmp_path)]
        )
        options = DatasetOptions.from_args(args)
        assert options.workers == 4
        session = options.session()
        assert session.workers == 4
        assert session.cache.root == tmp_path

    def test_no_cache_disables_cache(self):
        args = build_parser().parse_args(["validate", "--no-cache"])
        assert DatasetOptions.from_args(args).session().cache is None

    def test_every_dataset_command_shares_options(self):
        for command in ("generate", "figure", "report", "plot", "opportunities", "summary", "validate"):
            argv = [command, "--scale", "0.02", "--seed", "9", "--days", "10", "--scenario", "paper"]
            if command in ("figure", "plot"):
                argv.append("fig04")
            options = DatasetOptions.from_args(build_parser().parse_args(argv))
            assert options.scale == 0.02
            assert options.seed == 9
            assert options.days == 10.0

    def test_partitions_default_to_serial(self):
        args = build_parser().parse_args(["report"])
        options = DatasetOptions.from_args(args)
        assert options.partitions == 1
        assert options.cohorts is None

    def test_partitions_flow_into_session_config(self):
        args = build_parser().parse_args(
            ["summary", "--scale", "0.02", "--partitions", "2", "--cohorts", "6"]
        )
        session = DatasetOptions.from_args(args).session()
        assert session.config.partitions == 2
        assert session.config.resolved_cohorts == 6

    def test_invalid_partition_split_rejected_at_session_build(self):
        args = build_parser().parse_args(
            ["summary", "--partitions", "4", "--cohorts", "2"]
        )
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError, match="every island"):
            DatasetOptions.from_args(args).session()

    def test_bench_check_flags_parse(self):
        args = build_parser().parse_args(
            ["bench", "--check", "--check-threshold", "0.5", "--check-window", "3"]
        )
        assert args.check is True
        assert args.check_threshold == 0.5
        assert args.check_window == 3

    def test_bench_check_comparator_exit_codes(self, capsys, monkeypatch):
        from repro.bench import BenchCheck

        def fake_check(root, *, threshold, window):
            check = BenchCheck(12, 3, threshold, 2.0)
            if fake_check.regress:
                row = {"suite": "frame", "latest_s": 9.0, "baseline_s": 3.0, "ratio": 3.0}
                check.checked.append(row)
                check.regressions.append(row)
            return check

        monkeypatch.setattr("repro.bench.check_regressions", fake_check)
        fake_check.regress = False
        assert main(["bench", "--check", "--no-json"]) == 0
        fake_check.regress = True
        assert main(["bench", "--check", "--no-json"]) == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_report_flags_parse(self):
        args = build_parser().parse_args(["bench", "--report", "--markdown"])
        assert args.report is True
        assert args.markdown is True
        args = build_parser().parse_args(["bench"])
        assert args.report is False

    def test_bench_report_renders_and_exits_clean(self, capsys, monkeypatch):
        def fake_report(root, *, markdown=False):
            return "bench report: rendered markdown=" + str(markdown)

        monkeypatch.setattr("repro.bench.trend_report", fake_report)
        assert main(["bench", "--report"]) == 0
        assert "markdown=False" in capsys.readouterr().out
        assert main(["bench", "--report", "--markdown"]) == 0
        assert "markdown=True" in capsys.readouterr().out

    def test_obs_mode_defaults_to_report(self):
        args = build_parser().parse_args(["obs"])
        assert args.mode == "report"
        args = build_parser().parse_args(["obs", "top"])
        assert args.mode == "top"

    def test_obs_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "bottom"])

    def test_interchange_flags_parse_and_couple(self):
        args = build_parser().parse_args(
            ["summary", "--epoch-hours", "2", "--migrate-after-hours", "0.5"]
        )
        config = DatasetOptions.from_args(args).interchange()
        assert config.epoch_s == 2 * 3600.0
        assert config.migrate_after_s == 0.5 * 3600.0
        assert config.coupled

    def test_epoch_hours_alone_still_couples(self):
        args = build_parser().parse_args(["summary", "--epoch-hours", "6"])
        config = DatasetOptions.from_args(args).interchange()
        assert config.epoch_s == 6 * 3600.0
        assert config.migrate_after_s == 3600.0  # 1/6 of the epoch
        assert config.coupled

    def test_no_interchange_flags_means_uncoupled(self):
        args = build_parser().parse_args(["summary"])
        assert DatasetOptions.from_args(args).interchange() is None

    def test_events_out_and_progress_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            ["generate", "--events-out", str(tmp_path / "ev.jsonl"), "--progress"]
        )
        assert args.events_out == str(tmp_path / "ev.jsonl")
        assert args.progress is True
        args = build_parser().parse_args(["generate"])
        assert args.events_out is None
        assert args.progress is False


class TestCommands:
    def test_generate_writes_csvs(self, tmp_path, capsys):
        rc = main(
            ["generate", "--scale", "0.01", "--seed", "5", "--output", str(tmp_path)]
        )
        assert rc == 0
        assert (tmp_path / "jobs.csv").exists()
        assert (tmp_path / "gpu_jobs.csv").exists()
        assert (tmp_path / "per_gpu.csv").exists()
        assert "GPU jobs" in capsys.readouterr().out

    def test_figure_prints_comparisons(self, capsys):
        rc = main(["figure", "fig15", "--scale", "0.01", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mature job share" in out

    def test_report_writes_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "EXP.md"
        rc = main(
            ["report", "--scale", "0.01", "--seed", "5", "--output", str(out_file)]
        )
        assert rc == 0
        assert out_file.exists()

    def test_opportunities_prints_studies(self, capsys):
        rc = main(["opportunities", "--scale", "0.01", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "co-location" in out
        assert "power capping" in out
        assert "checkpointing" in out

    def test_unknown_figure_raises(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            main(["figure", "fig99", "--scale", "0.01"])

    def test_plot_writes_svgs(self, tmp_path, capsys):
        rc = main(
            ["plot", "fig04", "--scale", "0.01", "--seed", "5", "--output", str(tmp_path)]
        )
        assert rc == 0
        written = list(tmp_path.glob("fig04_*.svg"))
        assert len(written) == 2

    def test_summary_prints_sections(self, capsys):
        rc = main(["summary", "--scale", "0.01", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "queue health" in out
        assert "GPU utilization" in out

    def test_validate_reports_fraction(self, capsys):
        rc = main(["validate", "--scale", "0.01", "--seed", "5", "--min-pass", "0.0"])
        assert rc == 0
        assert "checks passed" in capsys.readouterr().out

    def test_validate_threshold_gate(self, capsys):
        rc = main(["validate", "--scale", "0.01", "--seed", "5", "--min-pass", "1.01"])
        assert rc == 1

    def test_scenario_flag(self, capsys):
        rc = main(
            ["figure", "fig15", "--scale", "0.01", "--seed", "5",
             "--scenario", "exploration_surge"]
        )
        assert rc == 0
        assert "exploratory job share" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["figure", "fig15", "--scale", "0.01", "--scenario", "moonbase"])

    def test_obs_report_includes_flight_recorder_digest(self, capsys):
        rc = main(["obs", "--scale", "0.01", "--seed", "5", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== trace" in out
        assert "events across" in out  # flight-recorder summary
        assert "span:workload" in out

    def test_obs_top_runs_build_and_summarizes(self, capsys):
        rc = main(["obs", "top", "--scale", "0.01", "--seed", "5", "--no-cache"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "stage workload" in captured.out
        assert "events across" in captured.out
        # serial single-partition build: the final table renders on
        # stderr even with no island heartbeats
        assert "sharded build:" in captured.err

    def test_events_out_writes_jsonl(self, tmp_path, capsys):
        events_file = tmp_path / "events.jsonl"
        rc = main(
            ["generate", "--scale", "0.01", "--seed", "5", "--no-cache",
             "--output", str(tmp_path / "ds"), "--events-out", str(events_file)]
        )
        assert rc == 0
        assert f"wrote {events_file}" in capsys.readouterr().out
        from repro.obs import read_jsonl

        events = list(read_jsonl(events_file))
        assert any(e.name == "stage" for e in events)

    def test_progress_flag_renders_final_table(self, tmp_path, capsys):
        rc = main(
            ["generate", "--scale", "0.01", "--seed", "5", "--no-cache",
             "--progress", "--output", str(tmp_path / "ds")]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "jobs.csv" in captured.out  # command output intact, on stdout
        assert "sharded build:" in captured.err  # telemetry stays on stderr

    def test_report_second_run_hits_cache(self, tmp_path, capsys):
        argv = [
            "report", "--scale", "0.01", "--seed", "5",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "EXP.md"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "builds: 1" in cold
        assert "stage workload:" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "builds: 0" in warm
        assert "stage workload:" not in warm
        assert "figure cache hits: 21" in warm
