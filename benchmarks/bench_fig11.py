"""Fig 11: within-user variability of job characteristics."""

from repro.figures.registry import run_figure


def test_fig11_user_variability(benchmark, dataset):
    result = benchmark(run_figure, "fig11", dataset)
    # shape: a typical user's jobs vary wildly (CoV around 100%+)
    assert result.get("user runtime CoV median").measured > 0.7
