"""End-to-end dataset generation: workload -> scheduler -> monitoring.

:func:`generate_dataset` is the one-call entry point used by figures,
benchmarks, and examples.  It reproduces the paper's combined dataset
(Sec. II): Slurm accounting rows joined with per-job GPU summaries on
job id, a per-GPU table for the multi-GPU analysis, and a dense
time-series store for a subset of jobs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.cluster.spec import ClusterSpec, supercloud_spec
from repro.frame import Table
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.monitor.timeseries import TimeSeriesStore
from repro.slurm.accounting import accounting_table
from repro.slurm.job import JobRecord
from repro.slurm.scheduler import SlurmSimulator
from repro.workload.calibration import PAPER_TARGETS
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@dataclass
class SupercloudDataset:
    """The reproduced study dataset.

    Attributes
    ----------
    jobs:
        All finished jobs (CPU and GPU) with accounting fields; GPU
        summary metrics joined where available.
    gpu_jobs:
        GPU jobs after the paper's 30-second filter, with per-job GPU
        metrics averaged over the job's GPUs.
    per_gpu:
        One row per (job, GPU) with metric summaries plus job context.
    timeseries:
        Dense series store for the sampled subset of jobs.
    """

    jobs: Table
    gpu_jobs: Table
    per_gpu: Table
    timeseries: TimeSeriesStore
    records: list[JobRecord]
    spec: ClusterSpec
    config: WorkloadConfig

    @property
    def num_users(self) -> int:
        return len(set(self.gpu_jobs["user"]))

    def describe(self) -> str:
        """Short textual summary mirroring the paper's Sec. II stats."""
        return (
            f"{self.config.days:g}-day study: {len(self.jobs)} total jobs, "
            f"{len(self.gpu_jobs)} GPU jobs after the 30 s filter, "
            f"{self.num_users} users, "
            f"{len(self.timeseries.job_ids())} jobs with dense time series"
        )


def generate_dataset(
    config: WorkloadConfig | None = None,
    monitoring: MonitoringConfig | None = None,
) -> SupercloudDataset:
    """Run the full pipeline and assemble the combined dataset."""
    config = config or WorkloadConfig()
    generator = WorkloadGenerator(config)
    requests = generator.generate()

    spec = supercloud_spec(config.scaled_nodes)
    simulator = SlurmSimulator(spec)
    collector = MonitoringCollector(monitoring).attach(simulator)
    result = simulator.run(requests)
    simulator.cluster.check_invariants()

    jobs = accounting_table(result.records)
    gpu_summary = collector.job_gpu_table()
    gpu_jobs = (
        jobs.filter(lambda t: (np.asarray(t["num_gpus"]) > 0))
        .filter(lambda t: np.asarray(t["run_time_s"], dtype=float) >= PAPER_TARGETS.short_job_filter_s)
        .join(gpu_summary, on="job_id")
    )

    per_gpu = collector.per_gpu_table()
    if per_gpu.num_rows:
        context = jobs.select(
            ["job_id", "user", "num_gpus", "run_time_s", "gpu_hours", "lifecycle_class", "interface"]
        )
        per_gpu = per_gpu.join(context, on="job_id")

    return SupercloudDataset(
        jobs=jobs,
        gpu_jobs=gpu_jobs,
        per_gpu=per_gpu,
        timeseries=collector.store,
        records=result.records,
        spec=spec,
        config=config,
    )


@functools.lru_cache(maxsize=4)
def _cached(scale: float, seed: int, days: float) -> SupercloudDataset:
    return generate_dataset(WorkloadConfig(scale=scale, seed=seed, days=days))


def default_dataset(scale: float = 0.1, seed: int = 20220214, days: float = 125.0) -> SupercloudDataset:
    """Memoized dataset for figures/benchmarks sharing one generation.

    The default ``scale=0.1`` (~5.2k GPU jobs) keeps figure
    regeneration interactive; pass ``scale=1.0`` for the paper-sized
    dataset.
    """
    return _cached(scale, seed, days)
