"""What if the GPUs were less reliable (but cheaper)?

The paper's Sec. VIII asks vendors for "high performance, but
potentially less resilience ... at a lower production cost".  This
example injects node failures at several reliability levels, measures
the job-failure share and the GPU hours lost, and shows how much
checkpointing claws back.

Run with ``python examples/reliability_study.py``.
"""

import numpy as np

from repro.cluster.spec import supercloud_spec
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.opportunities.checkpoint import CheckpointModel, checkpoint_study
from repro.slurm.accounting import accounting_table
from repro.slurm.failures import SECONDS_PER_YEAR, FailureModel
from repro.slurm.job import ExitCondition
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def run_with_mtbf(requests, nodes, mtbf_years):
    config = SchedulerConfig(
        failure_model=FailureModel(
            node_mtbf_s=mtbf_years * SECONDS_PER_YEAR, repair_time_s=4 * 3600.0, seed=13
        )
    )
    simulator = SlurmSimulator(supercloud_spec(nodes), config)
    collector = MonitoringCollector(MonitoringConfig(timeseries_fraction=0.0))
    collector.attach(simulator)
    result = simulator.run([r for r in requests])
    jobs = accounting_table(result.records)
    gpu_jobs = jobs.filter(lambda t: np.asarray(t["num_gpus"]) > 0)
    gpu_jobs = gpu_jobs.join(collector.job_gpu_table(), on="job_id")
    return result, gpu_jobs


def main() -> None:
    workload = WorkloadConfig(scale=0.03, seed=17)
    requests = WorkloadGenerator(workload).generate()
    print(f"workload: {len(requests)} jobs on {workload.scaled_nodes} nodes\n")

    print(f"{'MTBF':>12} {'node fails':>11} {'jobs killed':>12} "
          f"{'hw-failure share':>17} {'lost GPU-h':>11} {'ckpt saves':>11}")
    for mtbf_years in (40.0, 5.0, 1.0, 0.25):
        result, gpu_jobs = run_with_mtbf(requests, workload.scaled_nodes, mtbf_years)
        records = result.records
        hw_failed = [r for r in records if r.exit_condition is ExitCondition.NODE_FAILURE]
        lost = sum(r.gpu_hours for r in hw_failed)
        study = checkpoint_study(gpu_jobs, CheckpointModel(interval_s=600.0))
        print(
            f"{mtbf_years:>9.2f} yr {result.node_failures:>11d} "
            f"{result.jobs_killed_by_failures:>12d} "
            f"{len(hw_failed) / len(records):>16.2%} {lost:>11.1f} "
            f"{study.net_saving_gpu_hours:>10.0f}h"
        )
    print()
    print(
        "At the 40-year MTBF of current hardware, failures are noise (the paper's\n"
        "<0.5% observation); even at 0.25 years, checkpointing absorbs most of the\n"
        "lost work — supporting the cheap-but-less-reliable GPU recommendation."
    )


if __name__ == "__main__":
    main()
