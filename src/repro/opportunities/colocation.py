"""GPU co-location study (paper Sec. III takeaways).

The paper observes that most jobs underutilize the GPU and alternate
between active and idle phases at irregular intervals, and concludes
that "non-contending GPU resources [can be shared] among concurrent
jobs ... without having a large impact on job performance".  This
module quantifies that claim on ground-truth activity models:

* two jobs placed on one GPU contend only when both are active at the
  same instant *and* their combined demand exceeds the device;
* per-job slowdown is the time-average excess demand during the job's
  own active instants (work-conservation model);
* a greedy packer pairs jobs whose **mean** combined demand stays
  under a headroom threshold, and reports GPUs saved vs. slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class PairEvaluation:
    """Outcome of co-locating two jobs on one GPU."""

    slowdown_a: float
    slowdown_b: float
    combined_mean_demand: float
    contention_fraction: float

    @property
    def worst_slowdown(self) -> float:
        return max(self.slowdown_a, self.slowdown_b)


@dataclass(frozen=True)
class ColocationReport:
    """Fleet-level outcome of a packing policy."""

    num_jobs: int
    num_pairs: int
    gpus_before: int
    gpus_after: int
    mean_slowdown: float
    p95_slowdown: float

    @property
    def gpu_savings_fraction(self) -> float:
        if self.gpus_before == 0:
            return 0.0
        return 1.0 - self.gpus_after / self.gpus_before


class ColocationSimulator:
    """Evaluates co-location of single-GPU jobs on shared devices."""

    def __init__(
        self,
        resolution_s: float = 5.0,
        max_samples: int = 4000,
        demand_metric: str = "sm",
    ) -> None:
        if resolution_s <= 0:
            raise AnalysisError("resolution must be positive")
        self.resolution_s = resolution_s
        self.max_samples = max_samples
        self.demand_metric = demand_metric

    def _demand(self, model, duration_s: float) -> np.ndarray:
        count = min(int(duration_s / self.resolution_s) + 2, self.max_samples)
        times = np.linspace(0.0, max(duration_s, 1e-9), count)
        metrics = model.metrics_at(times, 0)
        return metrics[self.demand_metric]

    def evaluate_pair(self, model_a, model_b, duration_s: float) -> PairEvaluation:
        """Co-locate two jobs for ``duration_s`` and measure slowdowns.

        Demands are overlaid on a common grid; when the summed demand
        exceeds 100 % the device is oversubscribed and both active
        jobs slow proportionally (work conservation).
        """
        demand_a = self._demand(model_a, duration_s)
        demand_b = self._demand(model_b, duration_s)
        n = min(len(demand_a), len(demand_b))
        demand_a, demand_b = demand_a[:n], demand_b[:n]
        combined = demand_a + demand_b
        excess = np.maximum(combined / 100.0, 1.0)

        def slowdown(own: np.ndarray) -> float:
            active = own > 0.5
            if not active.any():
                return 1.0
            return float(excess[active].mean())

        return PairEvaluation(
            slowdown_a=slowdown(demand_a),
            slowdown_b=slowdown(demand_b),
            combined_mean_demand=float(combined.mean()),
            contention_fraction=float((combined > 100.0).mean()),
        )

    # ------------------------------------------------------------------
    def pack(
        self,
        jobs: list[tuple[object, float]],
        headroom: float = 60.0,
    ) -> ColocationReport:
        """Greedy first-fit pairing by mean demand.

        ``jobs`` is a list of ``(activity_model, duration_s)``.  Jobs
        are sorted by mean demand; the packer pairs the lowest-demand
        job with the highest-demand job that keeps the *combined* mean
        demand below ``headroom`` (%).  Unpaired jobs keep a dedicated
        GPU.
        """
        if not jobs:
            raise AnalysisError("no jobs to pack")
        demands = []
        for model, duration in jobs:
            demand = self._demand(model, duration)
            demands.append(float(demand.mean()))
        order = np.argsort(demands)

        paired: dict[int, int] = {}
        used = set()
        lo, hi = 0, len(order) - 1
        while lo < hi:
            a, b = int(order[lo]), int(order[hi])
            if demands[a] + demands[b] <= headroom:
                paired[a] = b
                used.update((a, b))
                lo += 1
                hi -= 1
            else:
                hi -= 1  # the high job is too hot to pair with anyone

        slowdowns = []
        for a, b in paired.items():
            result = self.evaluate_pair(jobs[a][0], jobs[b][0], min(jobs[a][1], jobs[b][1]))
            slowdowns.extend((result.slowdown_a, result.slowdown_b))
        for i in range(len(jobs)):
            if i not in used:
                slowdowns.append(1.0)

        slowdown_arr = np.asarray(slowdowns)
        return ColocationReport(
            num_jobs=len(jobs),
            num_pairs=len(paired),
            gpus_before=len(jobs),
            gpus_after=len(jobs) - len(paired),
            mean_slowdown=float(slowdown_arr.mean()),
            p95_slowdown=float(np.percentile(slowdown_arr, 95)),
        )


def colocation_study(dataset, max_jobs: int = 400, headroom: float = 60.0) -> ColocationReport:
    """Run the packing study on a dataset's single-GPU jobs."""
    jobs = []
    for record in dataset.records:
        if record.request.num_gpus != 1:
            continue
        model = record.request.tags.get("activity")
        if model is None:
            continue
        jobs.append((model, record.run_time_s))
        if len(jobs) >= max_jobs:
            break
    if not jobs:
        raise AnalysisError("dataset has no single-GPU jobs with activity models")
    return ColocationSimulator().pack(jobs, headroom=headroom)
