"""Quickstart: generate a dataset and reproduce two headline figures.

Run with ``python examples/quickstart.py``.  Uses a reduced scale so
the whole script finishes in well under a minute; raise ``SCALE`` to
1.0 for the paper-sized dataset (47k GPU jobs, ~4 minutes).

The dataset is built through a pipeline session backed by the default
on-disk artifact cache, so re-running the script loads the cached
tables instead of re-simulating.
"""

from repro import Session
from repro.pipeline import default_cache_dir

SCALE = 0.05
SEED = 20220214


def main() -> None:
    session = Session.from_scenario(
        "paper", scale=SCALE, seed=SEED, cache_dir=default_cache_dir()
    )
    print(f"Generating the Supercloud-like dataset at scale {SCALE} ...")
    dataset = session.dataset()
    print(dataset.describe())
    print()

    print("First rows of the combined GPU-job table:")
    preview = dataset.gpu_jobs.select(
        ["job_id", "user", "num_gpus", "run_time_s", "sm_mean", "power_w_mean", "lifecycle_class"]
    )
    print(preview.head(8).to_string())
    print()

    for result in session.run_figures(["fig04", "fig15"]):
        print(result.to_text())
        print()

    print("Pipeline session summary:")
    print(session.summary())
    print()
    print("Try `python -m repro report` for all figures at once.")


if __name__ == "__main__":
    main()
