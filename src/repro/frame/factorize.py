"""Key factorization: the kernel under every grouped operation.

Factorizing a key column means mapping each row to a small integer
*code* such that two rows share a code iff they share a key.  Once keys
are codes, every grouped operation (``group_by``, ``aggregate``,
``value_counts``, ``pivot``, ``join``) reduces to one stable sort of
the codes plus ``reduceat``-style segment kernels — no per-row Python.

Factorization runs in two stages.  Stage one produces codes in
*arbitrary* order by the cheapest route the dtype allows:

* integer / bool columns whose value span is comparable to the row
  count (job ids, GPU counts, day indices) use a sort-free dense
  counting table — O(n);
* other non-object columns (floats, unicode) use one unstable
  ``np.argsort`` plus adjacent-inequality boundaries;
* object columns (strings, mixed, ``None``) use a per-row dict —
  measured faster than casting 50k Python strings to a unicode array
  and sorting it, and it gives Python equality semantics for free.

Stage two builds the grouped view: the codes are compacted to the
smallest unsigned dtype and stably argsorted — numpy uses an O(n)
radix sort for small integer dtypes, so this costs a fraction of
sorting the original key — and the segments are then renumbered into
**first-seen order** (the order the key first appears in the table)
with O(n) gathers, because that is the group order the naive reference
implementations produce and the order the public API documents.

NaN keys each form their own single-row group: the sort stage splits
every boundary because ``NaN != NaN``, and the dict stage misses the
lookup for every fresh NaN object — both matching the naive reference,
which unwraps each numpy scalar into a fresh Python float.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


class Factorization:
    """Codes plus the sorted-by-code view of one or more key columns.

    Attributes
    ----------
    codes:
        Per-row group code in first-seen order (``intp``).
    num_groups:
        Number of distinct keys.
    order:
        Row indices stably sorted by code: group 0's rows first (in
        original order), then group 1's, ...
    starts:
        Segment boundaries into ``order``; group ``g`` owns
        ``order[starts[g]:starts[g + 1]]``.  Length ``num_groups + 1``.
    first_rows:
        The first row index of each group, in group (= first-seen)
        order.  Fancy-indexing a key column with this materializes the
        per-group key values without touching Python.
    """

    __slots__ = ("codes", "num_groups", "order", "starts", "first_rows")

    def __init__(
        self,
        codes: np.ndarray,
        num_groups: int,
        order: np.ndarray,
        starts: np.ndarray,
        first_rows: np.ndarray,
    ) -> None:
        self.codes = codes
        self.num_groups = num_groups
        self.order = order
        self.starts = starts
        self.first_rows = first_rows

    @property
    def sizes(self) -> np.ndarray:
        """Rows per group (vectorized, exact)."""
        return np.diff(self.starts)


def factorize_codes(column: np.ndarray) -> tuple[np.ndarray, int]:
    """Cheap factorization: codes in arbitrary (sorted) order.

    Enough for joins and for combining multi-column keys, where only
    "same code iff same key" matters, skipping the first-seen
    renumbering and the grouped-view construction.
    """
    n = len(column)
    if n == 0:
        return np.empty(0, dtype=np.intp), 0
    if column.dtype == object:
        return _dict_codes(column)
    if column.dtype.kind in "iub":
        dense = _dense_int_codes(column, n)
        if dense is not None:
            return dense
    order = np.argsort(column)
    sorted_key = column[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundary[1:])
    group_of_sorted = np.cumsum(boundary) - 1
    codes = np.empty(n, dtype=np.intp)
    codes[order] = group_of_sorted
    return codes, int(group_of_sorted[-1]) + 1


def factorize_columns(columns: Sequence[np.ndarray]) -> Factorization:
    """Factorize the row-wise tuple of one or more key columns.

    Multi-column keys are combined pairwise: combine codes as
    ``prev * k + next`` (always ``< n * n``, so no int64 overflow) and
    re-compress after every step.
    """
    if not columns:
        raise ValueError("factorize_columns requires at least one column")
    n = len(columns[0])
    if n == 0:
        empty = np.empty(0, dtype=np.intp)
        return Factorization(empty, 0, empty.copy(), np.zeros(1, dtype=np.intp), empty.copy())
    codes, count = factorize_codes(columns[0])
    for column in columns[1:]:
        nxt, k = factorize_codes(column)
        combined = codes.astype(np.int64) * np.int64(max(k, 1)) + nxt
        codes, count = factorize_codes(combined)
    # Grouped view: one *stable* argsort of the codes.  Compacting to a
    # small unsigned dtype makes numpy pick its O(n) radix sort, which
    # is far cheaper than stably sorting the original key would be.
    compact = codes.astype(np.uint16) if count <= np.iinfo(np.uint16).max else codes
    order_raw = np.argsort(compact, kind="stable")
    group_counts = np.bincount(codes, minlength=count)
    starts_raw = np.concatenate(([0], np.cumsum(group_counts)[:-1]))
    return _from_sort(order_raw, starts_raw, n)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _from_sort(order_raw: np.ndarray, starts_raw: np.ndarray, n: int) -> Factorization:
    """Renumber sort-ordered segments into first-seen group order."""
    num_groups = len(starts_raw)
    first_raw = order_raw[starts_raw]
    seen = np.argsort(first_raw, kind="stable")
    counts = np.diff(np.concatenate((starts_raw, [n])))[seen]
    starts = np.concatenate(([0], np.cumsum(counts)))
    segment_base = np.repeat(starts_raw[seen], counts)
    within = np.arange(n) - np.repeat(starts[:-1], counts)
    order = order_raw[segment_base + within]
    codes = np.empty(n, dtype=np.intp)
    codes[order] = np.repeat(np.arange(num_groups, dtype=np.intp), counts)
    return Factorization(codes, num_groups, order, starts, first_raw[seen])


def _dense_int_codes(key: np.ndarray, n: int) -> tuple[np.ndarray, int] | None:
    """Sort-free integer factorization via a dense value table.

    When the key's value span is comparable to the row count (job ids,
    GPU counts, day numbers), codes come from one O(n + span) counting
    pass instead of an O(n log n) sort.  Returns None for sparse keys.
    """
    lo = key.min()
    span = int(key.max()) - int(lo) + 1
    if span > max(4 * n, 1024):
        return None
    # Subtract in the key's own dtype: the span check above guarantees
    # the differences are small, so no overflow is possible.
    offsets = np.subtract(key, lo).astype(np.intp, copy=False)
    present = np.zeros(span, dtype=bool)
    present[offsets] = True
    remap = np.cumsum(present) - 1
    return remap[offsets].astype(np.intp, copy=False), int(remap[-1]) + 1


def _dict_codes(column: np.ndarray) -> tuple[np.ndarray, int]:
    """Slow-path factorization by hashing (already first-seen ordered)."""
    # No unwrapping of numpy scalars: np.str_/np.float64/np.int64 hash
    # and compare equal to their Python counterparts, so they land in
    # the same dict slot either way.
    lookup: dict[Any, int] = {}
    codes = np.empty(len(column), dtype=np.intp)
    for i, value in enumerate(column.tolist()):
        code = lookup.get(value)
        if code is None:
            code = lookup[value] = len(lookup)
        codes[i] = code
    return codes, len(lookup)
